//! The unified command-line surface of the figure binaries.
//!
//! Every binary parses [`Cli`] and understands the shared flags in
//! [`StdOpts`] (`--nodes`, `--scale`, `--seed`, `--threads`, `--steal`,
//! `--window-batch`, `--trace`, `--metrics-json`, `--full`) on top of its
//! own specifics. The
//! [`Exporter`] turns the observability flags into files: when a binary
//! sweeps many configurations, the *first* simulated run is the one that
//! gets traced and exported — enough to inspect one representative run in
//! `chrome://tracing` without multi-gigabyte outputs.

use updown_sim::{
    DiagKind, MachineConfig, Metrics, ProgramSpec, ProtocolProbe, RaceProbe, SpecSeverity,
    TopologyKind,
};

/// Minimal flag parsing: `--key value` pairs plus positional args.
pub struct Cli {
    pub positional: Vec<String>,
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Cli {
    pub fn parse() -> Cli {
        Self::from_args(std::env::args().skip(1))
    }

    pub fn from_args(args: impl IntoIterator<Item = String>) -> Cli {
        let mut positional = Vec::new();
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut args = args.into_iter().peekable();
        while let Some(a) = args.next() {
            if let Some(key) = a.strip_prefix("--") {
                match args.peek() {
                    Some(v) if !v.starts_with("--") => {
                        pairs.push((key.to_string(), args.next().unwrap()));
                    }
                    _ => flags.push(key.to_string()),
                }
            } else {
                positional.push(a);
            }
        }
        Cli {
            positional,
            pairs,
            flags,
        }
    }

    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.opt(key).unwrap_or(default)
    }

    /// Last `--key value` occurrence parsed as `T`, `None` if absent.
    pub fn opt<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
    }

    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key) || self.pairs.iter().any(|(k, _)| k == key)
    }
}

/// The flags every figure binary shares.
pub struct StdOpts {
    /// `--nodes` / legacy `--max-nodes`: top of the node sweep.
    pub max_nodes: u32,
    /// `--scale` / legacy `--scale-shift`: graph-scale shift vs defaults.
    pub scale_shift: i32,
    /// `--seed`: generator seed.
    pub seed: u64,
    /// `--threads`: simulator worker threads (1 = sequential engine).
    /// Results are byte-identical across values; only wall-clock changes.
    pub threads: u32,
    /// `--steal on|off`: work-stealing shard scheduling (default on).
    /// Scheduling-only; results are byte-identical either way.
    pub steal: bool,
    /// `--window-batch K`: max windows per barrier round under horizon
    /// batching (default 8; 1 disables). Results are byte-identical for
    /// every value.
    pub window_batch: u64,
    /// `--topology`: system-network topology (`uniform`, `polar`,
    /// `torus`, `dragonfly`). Results are byte-identical across thread
    /// counts for every value; `uniform` reproduces the pre-fabric model.
    pub topology: TopologyKind,
    /// `--full`: paper-sized sweep.
    pub full: bool,
    /// `--sanitize`: arm the runtime protocol sanitizer on every run
    /// (see [`Sanitizer`] and docs/udcheck.md).
    pub sanitize: bool,
    /// `--race`: arm the happens-before race detector on every run
    /// (see [`RaceGate`] and docs/udrace.md).
    pub race: bool,
    /// `--trace <path>` / `--metrics-json <path>` exporter.
    pub exporter: Exporter,
}

impl StdOpts {
    /// Parse the shared flags with per-binary defaults: `nodes_default`
    /// applies without `--full`, `nodes_full` with it (same for shift).
    pub fn parse(
        cli: &Cli,
        (nodes_default, nodes_full): (u32, u32),
        (shift_default, shift_full): (i32, i32),
    ) -> StdOpts {
        let full = cli.has("full");
        let max_nodes = cli
            .opt("nodes")
            .or_else(|| cli.opt("max-nodes"))
            .unwrap_or(if full { nodes_full } else { nodes_default });
        let scale_shift = cli
            .opt("scale")
            .or_else(|| cli.opt("scale-shift"))
            .unwrap_or(if full { shift_full } else { shift_default });
        StdOpts {
            max_nodes,
            scale_shift,
            seed: cli.get("seed", 0),
            threads: cli.get("threads", 1).max(1),
            steal: parse_on_off(cli, "steal", true),
            window_batch: cli.get::<u64>("window-batch", 8).max(1),
            topology: parse_topology(cli),
            full,
            sanitize: cli.has("sanitize"),
            race: cli.has("race"),
            exporter: Exporter::from_cli(cli),
        }
    }
}

/// Parse an `--key on|off` toggle (also accepts `true|false`/`1|0`; the
/// bare flag means "on"). Exits on anything else — a typo like
/// `--steal of` must not silently pick either setting.
pub fn parse_on_off(cli: &Cli, key: &str, default: bool) -> bool {
    match cli.opt::<String>(key) {
        None => {
            if cli.has(key) {
                true
            } else {
                default
            }
        }
        Some(v) => match v.as_str() {
            "on" | "true" | "1" => true,
            "off" | "false" | "0" => false,
            other => {
                eprintln!("--{key} {other}: expected on|off");
                std::process::exit(2);
            }
        },
    }
}

/// Apply the shared scheduler knobs (`--steal on|off`, `--window-batch K`)
/// to a machine built outside [`StdOpts::machine`] — the bins that parse
/// [`Cli`] directly share the same defaults this way.
pub fn sched_knobs(cli: &Cli, cfg: &mut MachineConfig) {
    cfg.steal = parse_on_off(cli, "steal", true);
    cfg.window_batch = cli.get::<u64>("window-batch", 8).max(1);
}

/// Parse `--topology`, exiting with the list of valid values on a bad
/// one (a silent fallback to the default would quietly benchmark the
/// wrong network).
pub fn parse_topology(cli: &Cli) -> TopologyKind {
    match cli.opt::<String>("topology") {
        None => TopologyKind::default(),
        Some(s) => s.parse().unwrap_or_else(|e| {
            eprintln!("--topology {s}: {e}");
            std::process::exit(2);
        }),
    }
}

/// `--sanitize` support for the figure binaries: arms every simulated run
/// with [`MachineConfig::sanitize`] plus a fresh
/// [`ProtocolProbe`], then reports the collected
/// diagnostics at the end of `main`. Simulated results are unchanged for
/// violation-free programs (see docs/udcheck.md), so sanitized sweeps
/// reproduce the exact figures while cross-checking the event protocol.
pub struct Sanitizer {
    enabled: bool,
    runs: std::sync::Mutex<Vec<(String, ProtocolProbe)>>,
}

impl Sanitizer {
    pub fn from_cli(cli: &Cli) -> Sanitizer {
        Sanitizer {
            enabled: cli.has("sanitize"),
            runs: std::sync::Mutex::new(Vec::new()),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Arm `cfg` with the sanitizer and a fresh probe when `--sanitize`
    /// was given; `label` names the run in the final report.
    pub fn arm(&self, label: &str, cfg: &mut MachineConfig) {
        if !self.enabled {
            return;
        }
        let probe = ProtocolProbe::new();
        cfg.sanitize = true;
        cfg.probe = Some(probe.clone());
        self.runs.lock().unwrap().push((label.to_string(), probe));
    }

    /// Print every diagnostic recorded across the armed runs to stderr;
    /// returns whether any run reported a violation.
    pub fn dirty(&self) -> bool {
        if !self.enabled {
            return false;
        }
        let runs = self.runs.lock().unwrap();
        let mut dirty = false;
        for (label, probe) in runs.iter() {
            for d in probe.diagnostics() {
                dirty = true;
                eprintln!(
                    "sanitizer[{}] {label}: {} — {} (x{}, first at tick {} lane {})",
                    d.kind.as_str(),
                    d.handler,
                    d.detail,
                    d.count,
                    d.first_tick,
                    d.lane
                );
            }
        }
        if !dirty {
            eprintln!("sanitizer: {} run(s), no protocol violations", runs.len());
        }
        dirty
    }

    /// Tail-of-`main` helper: report and exit non-zero on violations.
    pub fn exit_if_dirty(&self) {
        if self.dirty() {
            std::process::exit(1);
        }
    }
}

/// `--race` support for the figure binaries: arms every simulated run
/// with a fresh [`RaceProbe`] (the happens-before race detector, see
/// docs/udrace.md), then reports every unordered conflicting access pair
/// at the end of `main`. Like the sanitizer, the probe has zero observer
/// effect: simulated results and metrics are unchanged.
pub struct RaceGate {
    enabled: bool,
    runs: std::sync::Mutex<Vec<(String, RaceProbe)>>,
}

impl RaceGate {
    pub fn from_cli(cli: &Cli) -> RaceGate {
        RaceGate {
            enabled: cli.has("race"),
            runs: std::sync::Mutex::new(Vec::new()),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Arm `cfg` with a fresh race probe when `--race` was given; `label`
    /// names the run in the final report.
    pub fn arm(&self, label: &str, cfg: &mut MachineConfig) {
        if !self.enabled {
            return;
        }
        let probe = RaceProbe::new();
        cfg.race = Some(probe.clone());
        self.runs.lock().unwrap().push((label.to_string(), probe));
    }

    /// Print every race site recorded across the armed runs to stderr;
    /// returns whether any run reported a race (or overflowed the site
    /// cap, which hides potential races).
    pub fn dirty(&self) -> bool {
        if !self.enabled {
            return false;
        }
        let runs = self.runs.lock().unwrap();
        let mut dirty = false;
        for (label, probe) in runs.iter() {
            let r = probe.snapshot();
            for s in &r.sites {
                dirty = true;
                eprintln!(
                    "udrace[{label}] '{}' races with '{}': {} (x{}, first at tick {} lane {})",
                    s.current, s.prior, s.detail, s.count, s.first_tick, s.lane
                );
            }
            if r.sites_truncated > 0 {
                dirty = true;
                eprintln!(
                    "udrace[{label}] warning: {} distinct site(s) dropped past the site cap",
                    r.sites_truncated
                );
            }
        }
        if !dirty {
            eprintln!("udrace: {} run(s), no races", runs.len());
        }
        dirty
    }

    /// Tail-of-`main` helper: report and exit non-zero on races.
    pub fn exit_if_dirty(&self) {
        if self.dirty() {
            std::process::exit(1);
        }
    }
}

/// `--spec` support for the figure binaries: arms every simulated run
/// with runtime protocol-spec enforcement
/// ([`MachineConfig::enforce_spec`] plus a fresh [`ProtocolProbe`]), then
/// reports every observed-vs-declared deviation at the end of `main`.
/// Like the sanitizer the probe has zero observer effect, so enforced
/// sweeps reproduce the exact figures; see docs/udspec.md.
pub struct SpecGate {
    enabled: bool,
    runs: std::sync::Mutex<Vec<(String, ProtocolProbe)>>,
}

impl SpecGate {
    pub fn from_cli(cli: &Cli) -> SpecGate {
        SpecGate {
            enabled: cli.has("spec"),
            runs: std::sync::Mutex::new(Vec::new()),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Arm `cfg` to enforce `spec` when `--spec` was given; `label` names
    /// the run in the final report. Reuses a probe another gate already
    /// attached (e.g. `--sanitize`) so both report from the same summary.
    pub fn arm(&self, label: &str, spec: &ProgramSpec, cfg: &mut MachineConfig) {
        if !self.enabled {
            return;
        }
        let probe = match &cfg.probe {
            Some(p) => p.clone(),
            None => {
                let p = ProtocolProbe::new();
                cfg.probe = Some(p.clone());
                p
            }
        };
        cfg.enforce_spec = Some(spec.clone());
        self.runs.lock().unwrap().push((label.to_string(), probe));
    }

    /// Print every spec violation recorded across the armed runs to
    /// stderr; returns whether any run deviated from its declarations.
    pub fn dirty(&self) -> bool {
        if !self.enabled {
            return false;
        }
        let runs = self.runs.lock().unwrap();
        let mut dirty = false;
        for (label, probe) in runs.iter() {
            for d in probe.diagnostics() {
                if d.kind != DiagKind::SpecViolation {
                    continue;
                }
                dirty = true;
                eprintln!("udspec[{label}] {}: {} (x{})", d.handler, d.detail, d.count);
            }
        }
        if !dirty {
            eprintln!("udspec: {} run(s), no spec violations", runs.len());
        }
        dirty
    }

    /// Tail-of-`main` helper: report and exit non-zero on violations.
    pub fn exit_if_dirty(&self) {
        if self.dirty() {
            std::process::exit(1);
        }
    }
}

/// `--cost` support for the figure binaries: before each armed run,
/// predict its load and traffic statically with `udcost`
/// ([`udcheck::analyze_cost`]) and seed the parallel scheduler's shard
/// claim order with the prediction ([`MachineConfig::cost_hints`]), so
/// window 0 claims the predicted-heaviest shard first instead of
/// discovering the ranking one window late. Scheduling-only: simulated
/// results are byte-identical with hints on or off. At the end of `main`
/// the gate prints one prediction summary per run and exits non-zero if
/// any prediction carried error-severity findings; see docs/analysis.md.
pub struct CostGate {
    enabled: bool,
    runs: std::sync::Mutex<Vec<udcheck::CostReport>>,
}

impl CostGate {
    pub fn from_cli(cli: &Cli) -> CostGate {
        CostGate {
            enabled: cli.has("cost"),
            runs: std::sync::Mutex::new(Vec::new()),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Predict the run `label` describes and seed `cfg.cost_hints` from
    /// the prediction. Callers gate the workload construction on
    /// [`CostGate::enabled`] (`cg.enabled().then(|| app::workload(..))`)
    /// so disabled sweeps pay nothing.
    pub fn arm(
        &self,
        label: &str,
        spec: &ProgramSpec,
        workload: Option<updown_sim::spec::Workload>,
        cfg: &mut MachineConfig,
    ) {
        let Some(w) = workload else { return };
        if !self.enabled {
            return;
        }
        let report = udcheck::analyze_cost(label, spec, &w, cfg);
        cfg.cost_hints = report.shard_hints();
        self.runs.lock().unwrap().push(report);
    }

    /// Print every prediction summary to stderr; returns whether any
    /// prediction carried an error-severity finding.
    pub fn dirty(&self) -> bool {
        if !self.enabled {
            return false;
        }
        let runs = self.runs.lock().unwrap();
        let mut dirty = false;
        for r in runs.iter() {
            eprintln!(
                "udcost[{}]: predicted {:.0} events, {:.0} msgs \
                 ({:.0} inter-node), imbalance {:.2}x; hints {:?}",
                r.app,
                r.total_events,
                r.total_msgs,
                r.inter_node_msgs,
                r.imbalance,
                r.shard_hints()
            );
            for f in &r.findings {
                dirty |= f.severity == SpecSeverity::Error;
                eprintln!("udcost[{}] [{}] {}: {}", r.app, f.severity, f.check, f.message);
            }
        }
        dirty
    }

    /// Tail-of-`main` helper: report and exit non-zero on errors.
    pub fn exit_if_dirty(&self) {
        if self.dirty() {
            std::process::exit(1);
        }
    }
}

/// `--checkpoint` / `--restore` / `--checkpoint-every` support for the
/// figure binaries (see docs/checkpoint.md).
///
/// * `--checkpoint-every N` sets [`MachineConfig::checkpoint_every`] on
///   every armed run: the engine pauses every `N` scheduler windows,
///   snapshots, round-trips the snapshot and continues. Results are
///   byte-identical with checkpointing on or off.
/// * `--checkpoint <path>` additionally writes an `updown-snapshot/v1`
///   file at the first checkpoint boundary of the *first* armed run
///   (first-run-wins, like the [`Exporter`]). Defaults the cadence to 8
///   windows when `--checkpoint-every` is absent.
/// * `--restore <path>` re-drives the first armed run against the
///   snapshot: at the recorded window the engine byte-compares its live
///   state against the file, round-trips the decoder, and continues.
///   The header is validated up front so a bad path or corrupt file is a
///   clean CLI error. Defaults the cadence to the snapshot's window so
///   the boundary lands exactly once.
pub struct Checkpoint {
    every: u64,
    write_path: Option<String>,
    restore_path: Option<String>,
    /// First-run-wins: paths attach to the first armed run only.
    armed_paths: std::sync::atomic::AtomicBool,
}

impl Checkpoint {
    pub fn from_cli(cli: &Cli) -> Checkpoint {
        let write_path: Option<String> = cli.opt("checkpoint");
        let restore_path: Option<String> = cli.opt("restore");
        let mut every: u64 = cli.get("checkpoint-every", 0);
        if let Some(p) = &restore_path {
            // Validate the header up front: a missing or corrupt snapshot
            // should be a CLI error, not a mid-sweep panic.
            match updown_sim::snapshot::read_header(std::path::Path::new(p)) {
                Ok(h) => {
                    if every == 0 {
                        every = h.window.max(1);
                    } else if h.window % every != 0 {
                        eprintln!(
                            "--restore {p}: snapshot was taken at window {} which is not a \
                             multiple of --checkpoint-every {every}",
                            h.window
                        );
                        std::process::exit(2);
                    }
                }
                Err(e) => {
                    eprintln!("--restore {p}: {e}");
                    std::process::exit(2);
                }
            }
        }
        if write_path.is_some() && every == 0 {
            every = 8;
        }
        Checkpoint {
            every,
            write_path,
            restore_path,
            armed_paths: std::sync::atomic::AtomicBool::new(false),
        }
    }

    pub fn enabled(&self) -> bool {
        self.every != 0
    }

    /// Arm `cfg` with the checkpoint cadence; the snapshot file paths
    /// (write or restore) attach to the first armed run only.
    pub fn arm(&self, cfg: &mut MachineConfig) {
        if self.every == 0 {
            return;
        }
        cfg.checkpoint_every = self.every;
        if !self.armed_paths.swap(true, std::sync::atomic::Ordering::Relaxed) {
            cfg.checkpoint_path = self.write_path.clone().map(Into::into);
            cfg.restore_path = self.restore_path.clone().map(Into::into);
        }
    }
}

/// `--record` / `--replay` support for the figure binaries (see
/// docs/checkpoint.md): `--record` makes every armed run capture its
/// cross-shard message schedule (measures recording overhead); `--replay`
/// additionally re-executes every shard of every recording in isolation
/// after the run and byte-compares the replayed event stream against the
/// recorded one, reporting divergences at the end of `main`.
pub struct ReplayGate {
    record: bool,
    check: Option<updown_sim::ReplayCheck>,
}

impl ReplayGate {
    pub fn from_cli(cli: &Cli) -> ReplayGate {
        let replay = cli.has("replay");
        ReplayGate {
            record: cli.has("record") || replay,
            check: replay.then(updown_sim::ReplayCheck::new),
        }
    }

    pub fn enabled(&self) -> bool {
        self.record
    }

    /// Arm `cfg` to record (and, under `--replay`, verify) the run.
    pub fn arm(&self, cfg: &mut MachineConfig) {
        if self.record {
            cfg.record = true;
        }
        if let Some(check) = &self.check {
            cfg.replay = Some(check.clone());
        }
    }

    /// Print the per-run replay verdicts to stderr; returns whether any
    /// replayed shard diverged from its recording.
    pub fn dirty(&self) -> bool {
        let Some(check) = &self.check else {
            return false;
        };
        let reports = check.reports();
        let mut dirty = false;
        for r in &reports {
            if r.ok() {
                eprintln!(
                    "replay[{}]: {} shard(s), {} window(s), {} event(s) — byte-identical",
                    r.label, r.shards, r.rounds, r.events
                );
            } else {
                dirty = true;
                for m in &r.mismatches {
                    eprintln!("replay[{}] DIVERGED: {m}", r.label);
                }
            }
        }
        if reports.is_empty() {
            eprintln!("replay: no runs verified");
        }
        dirty
    }

    /// Tail-of-`main` helper: report and exit non-zero on divergence.
    pub fn exit_if_dirty(&self) {
        if self.dirty() {
            std::process::exit(1);
        }
    }
}

/// Host-throughput annotation for sweep progress lines: simulated events
/// retired per *host* second, formatted via [`crate::timing::fmt_rate`].
///
/// This figure goes to stdout/stderr next to the simulated-cycle numbers
/// and is deliberately kept out of every metrics JSON: host throughput
/// varies run to run, while the metrics files are byte-compared across
/// engines and thread counts (see docs/perf.md).
pub fn host_rate(events: u64, secs: f64) -> String {
    crate::timing::fmt_rate(events, secs)
}

/// Writes the `--trace` and `--metrics-json` files for the first run of a
/// sweep; subsequent calls are no-ops.
pub struct Exporter {
    trace_path: Option<String>,
    metrics_path: Option<String>,
    exported: bool,
}

impl Exporter {
    pub fn from_cli(cli: &Cli) -> Exporter {
        Exporter {
            trace_path: cli.opt("trace"),
            metrics_path: cli.opt("metrics-json"),
            exported: false,
        }
    }

    /// Should the *next* simulated run record an event trace? True until
    /// the first export happens, and only when `--trace` was given.
    pub fn want_trace(&self) -> bool {
        self.trace_path.is_some() && !self.exported
    }

    /// True when either output flag was given and nothing is written yet.
    pub fn pending(&self) -> bool {
        !self.exported && (self.trace_path.is_some() || self.metrics_path.is_some())
    }

    /// Export the run (first call wins). `trace_json` is the Chrome-trace
    /// JSON from the app result; pass `None` when tracing was off.
    pub fn export(&mut self, label: &str, metrics: &Metrics, trace_json: Option<&str>) {
        if self.exported {
            return;
        }
        if let Some(path) = &self.metrics_path {
            std::fs::write(path, metrics.to_json())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("  [{label}] metrics JSON -> {path}");
        }
        if let Some(path) = &self.trace_path {
            match trace_json {
                Some(json) => {
                    std::fs::write(path, json)
                        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                    eprintln!("  [{label}] Chrome trace -> {path} (open in chrome://tracing)");
                }
                None => eprintln!("  [{label}] --trace given but the run recorded no trace"),
            }
        }
        self.exported = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn std_opts_parse_shared_flags() {
        let c = cli(&[
            "pr",
            "--nodes",
            "8",
            "--scale",
            "-2",
            "--seed",
            "7",
            "--trace",
            "/tmp/t.json",
        ]);
        let o = StdOpts::parse(&c, (32, 256), (1, 3));
        assert_eq!(o.max_nodes, 8);
        assert_eq!(o.scale_shift, -2);
        assert_eq!(o.seed, 7);
        assert_eq!(o.threads, 1, "sequential engine by default");
        assert!(!o.full);
        assert!(o.exporter.want_trace());
        assert_eq!(c.positional, vec!["pr"]);
    }

    #[test]
    fn std_opts_defaults_follow_full() {
        let o = StdOpts::parse(&cli(&["--full"]), (32, 256), (1, 3));
        assert_eq!(o.max_nodes, 256);
        assert_eq!(o.scale_shift, 3);
        assert!(!o.exporter.want_trace());
    }

    #[test]
    fn threads_flag_parses_and_clamps() {
        let o = StdOpts::parse(&cli(&["--threads", "4"]), (32, 256), (1, 3));
        assert_eq!(o.threads, 4);
        let o = StdOpts::parse(&cli(&["--threads", "0"]), (32, 256), (1, 3));
        assert_eq!(o.threads, 1, "0 clamps to the sequential engine");
    }

    #[test]
    fn legacy_flag_names_still_work() {
        let o = StdOpts::parse(&cli(&["--max-nodes", "4", "--scale-shift", "0"]), (32, 256), (1, 3));
        assert_eq!(o.max_nodes, 4);
        assert_eq!(o.scale_shift, 0);
    }

    #[test]
    fn exporter_writes_first_run_only() {
        let dir = std::env::temp_dir();
        let mp = dir.join("updown_cli_test.metrics.json");
        let mp_s = mp.to_str().unwrap().to_string();
        let mut ex = Exporter {
            trace_path: None,
            metrics_path: Some(mp_s.clone()),
            exported: false,
        };
        assert!(ex.pending());
        let m = sample_metrics(100);
        ex.export("first", &m, None);
        assert!(!ex.pending());
        let m2 = sample_metrics(999);
        ex.export("second", &m2, None);
        let written = std::fs::read_to_string(&mp).unwrap();
        let v = updown_sim::json::JsonValue::parse(&written).unwrap();
        assert_eq!(v.get("final_tick").unwrap().as_u64(), Some(100));
        let _ = std::fs::remove_file(&mp);
    }

    fn sample_metrics(final_tick: u64) -> Metrics {
        Metrics {
            final_tick,
            clock_ghz: 2.0,
            stats: Default::default(),
            total_busy: 0,
            active_lanes: 0,
            total_lanes: 4,
            nodes: vec![],
            hot_lanes: vec![],
            phases: vec![],
            custom: Default::default(),
            fabric: Default::default(),
            sched: Default::default(),
            host_sched: Default::default(),
        }
    }

    #[test]
    fn scheduler_knobs_parse_and_default() {
        let o = StdOpts::parse(&cli(&[]), (32, 256), (1, 3));
        assert!(o.steal, "work-stealing defaults on");
        assert_eq!(o.window_batch, 8, "horizon batching defaults to 8");
        let o = StdOpts::parse(
            &cli(&["--steal", "off", "--window-batch", "1"]),
            (32, 256),
            (1, 3),
        );
        assert!(!o.steal);
        assert_eq!(o.window_batch, 1);
        let o = StdOpts::parse(&cli(&["--window-batch", "0"]), (32, 256), (1, 3));
        assert_eq!(o.window_batch, 1, "0 clamps to batching off");
        let o = StdOpts::parse(&cli(&["--steal", "on"]), (32, 256), (1, 3));
        assert!(o.steal);
    }

    #[test]
    fn topology_flag_parses_and_defaults() {
        let o = StdOpts::parse(&cli(&[]), (32, 256), (1, 3));
        assert_eq!(o.topology, TopologyKind::Uniform);
        let o = StdOpts::parse(&cli(&["--topology", "torus"]), (32, 256), (1, 3));
        assert_eq!(o.topology, TopologyKind::Torus);
        let o = StdOpts::parse(&cli(&["--topology", "PolarStar"]), (32, 256), (1, 3));
        assert_eq!(o.topology, TopologyKind::Polar);
    }
}
