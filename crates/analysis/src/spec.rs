//! `udspec` static analysis: deadlock and resource-bound checks over a
//! [`ProgramSpec`] — declarations alone, zero simulation ticks.
//!
//! Three check families run over the declared event-flow graph:
//!
//! 1. **Wait-for cycles** (`wait-cycle`): strongly connected components of
//!    the *group* digraph whose edges are continuation-carrying sends
//!    (the sender's thread holds its context until the reply arrives).
//!    A cycle of unconditional, unordered waits is a certain deadlock
//!    shape under thread-table saturation (error); a cycle whose every
//!    internal edge is declared `ordered` is hierarchical recursion that
//!    strictly descends (info); anything in between is a warning.
//! 2. **Resource-bound certification** (`thread-bound-*`, `spm-bound-*`):
//!    [`certify`] folds spawn fan-out declarations into per-lane
//!    live-thread and scratchpad-word upper bounds per thread group; the
//!    totals must fit the target machine's thread table and scratchpad.
//!    Groups that only admit an unbounded derivation are reported at
//!    info severity — the program relies on a dynamic throttle (credit
//!    counters, windows) the spec cannot see.
//! 3. **Spec consistency** (`unknown-send-target`, `arity-incompatible`,
//!    `unknown-group-root`, `unknown-resume-target`, `unreachable-event`):
//!    the declarations must close over themselves — every declared send
//!    names a declared event with a satisfiable operand range, and every
//!    declared event is reachable from a host injection.
//!
//! Severity scale and the `clean` predicate mirror `udcheck`: clean means
//! zero error-severity findings.

use std::collections::{BTreeMap, BTreeSet};

use updown_sim::json::JsonWriter;
use updown_sim::spec::{certify, Bound, Certification, ProgramSpec};
use updown_sim::{MachineConfig, SpecFinding, SpecSeverity};

/// One continuation-carrying (wait) edge of the group digraph.
#[derive(Clone, Debug)]
struct WaitEdge {
    src: String,
    dst: String,
    conditional: bool,
    ordered: bool,
}

fn wait_edges(spec: &ProgramSpec) -> Vec<WaitEdge> {
    let mut out = Vec::new();
    for ev in spec.events() {
        let src = spec.group_of(&ev.name).to_string();
        for sd in &ev.sends {
            if !sd.with_cont {
                continue;
            }
            for t in &sd.targets {
                out.push(WaitEdge {
                    src: src.clone(),
                    dst: spec.group_of(t).to_string(),
                    conditional: sd.conditional,
                    ordered: sd.ordered,
                });
            }
        }
    }
    out
}

/// Strongly connected components of the wait digraph, via iterative
/// Tarjan over a deterministic (sorted) node order.
fn sccs(nodes: &[String], edges: &[WaitEdge]) -> Vec<Vec<String>> {
    let idx: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for e in edges {
        let (Some(&s), Some(&d)) = (idx.get(e.src.as_str()), idx.get(e.dst.as_str())) else {
            continue;
        };
        adj[s].push(d);
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }

    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut out: Vec<Vec<String>> = Vec::new();

    // Iterative Tarjan: (node, next-child-offset) call frames.
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*child) {
                *child += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        comp.push(nodes[w].clone());
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    out.push(comp);
                }
                frames.pop();
                if let Some(&mut (u, _)) = frames.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    out.sort();
    out
}

fn finding(
    severity: SpecSeverity,
    check: &'static str,
    subject: impl Into<String>,
    message: impl Into<String>,
) -> SpecFinding {
    SpecFinding {
        severity,
        check,
        subject: subject.into(),
        message: message.into(),
    }
}

/// Wait-for-cycle detection over continuation edges (check family 1).
pub fn wait_cycle_findings(spec: &ProgramSpec) -> Vec<SpecFinding> {
    let edges = wait_edges(spec);
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    for e in &edges {
        nodes.insert(e.src.clone());
        nodes.insert(e.dst.clone());
    }
    let nodes: Vec<String> = nodes.into_iter().collect();
    let mut out = Vec::new();
    for comp in sccs(&nodes, &edges) {
        let in_comp = |n: &str| comp.iter().any(|c| c == n);
        let internal: Vec<&WaitEdge> = edges
            .iter()
            .filter(|e| in_comp(&e.src) && in_comp(&e.dst))
            .collect();
        // A singleton without a self-loop is not a cycle.
        if internal.is_empty() {
            continue;
        }
        let severity = if internal.iter().all(|e| e.ordered) {
            SpecSeverity::Info
        } else if internal.iter().all(|e| !e.conditional && !e.ordered) {
            SpecSeverity::Error
        } else {
            SpecSeverity::Warning
        };
        let shape = match severity {
            SpecSeverity::Info => "ordered recursion (strictly descending, cannot deadlock)",
            SpecSeverity::Error => {
                "every wait is unconditional and unordered; deadlocks under thread-table saturation"
            }
            SpecSeverity::Warning => "some waits are conditional; may deadlock on adverse paths",
        };
        out.push(finding(
            severity,
            "wait-cycle",
            comp[0].clone(),
            format!(
                "continuation wait cycle through {{{}}} ({} edge(s)): {shape}",
                comp.join(", "),
                internal.len()
            ),
        ));
    }
    out
}

/// Resource-bound certification against machine capacities (family 2).
pub fn bound_findings(cert: &Certification, mc: &MachineConfig) -> Vec<SpecFinding> {
    let mut out = Vec::new();
    for g in &cert.groups {
        if g.live == Bound::Unbounded {
            out.push(finding(
                SpecSeverity::Info,
                "thread-bound-uncertified",
                g.root.clone(),
                if g.derived {
                    "spawn fan-out admits no finite per-lane live-thread bound \
                     (spawn cycle or unbounded fanout); relies on a dynamic throttle"
                        .to_string()
                } else {
                    "declared live_unbounded; relies on a dynamic throttle".to_string()
                },
            ));
        }
        if g.spm == Bound::Unbounded {
            out.push(finding(
                SpecSeverity::Info,
                "spm-bound-uncertified",
                g.root.clone(),
                "no finite per-lane scratchpad bound declared".to_string(),
            ));
        }
    }
    if let Bound::Finite(b) = cert.threads_per_lane {
        if b > u64::from(mc.max_threads_per_lane) {
            out.push(finding(
                SpecSeverity::Error,
                "thread-bound-capacity",
                "machine".to_string(),
                format!(
                    "certified per-lane live-thread bound {b} exceeds the thread \
                     table ({} contexts/lane)",
                    mc.max_threads_per_lane
                ),
            ));
        }
    }
    if let Bound::Finite(b) = cert.spm_words_per_lane {
        if b > u64::from(mc.spm_words) {
            out.push(finding(
                SpecSeverity::Error,
                "spm-bound-capacity",
                "machine".to_string(),
                format!(
                    "certified per-lane scratchpad bound {b} words exceeds the \
                     scratchpad ({} words/lane)",
                    mc.spm_words
                ),
            ));
        }
    }
    out
}

/// Spec self-consistency (family 3).
pub fn consistency_findings(spec: &ProgramSpec) -> Vec<SpecFinding> {
    let mut out = Vec::new();
    let mut targeted: BTreeSet<&str> = BTreeSet::new();
    for ev in spec.events() {
        for sd in &ev.sends {
            for t in &sd.targets {
                targeted.insert(t.as_str());
            }
        }
        for r in &ev.resumes {
            targeted.insert(r.as_str());
        }
    }
    for ev in spec.events() {
        for sd in &ev.sends {
            for t in &sd.targets {
                let Some(dst) = spec.event(t) else {
                    out.push(finding(
                        SpecSeverity::Error,
                        "unknown-send-target",
                        ev.name.clone(),
                        format!("declares a send to `{t}`, which no thread-type declares"),
                    ));
                    continue;
                };
                // Operand ranges must intersect, or no message on this
                // edge can ever be accepted.
                let hi_ok = dst.max_args.is_none_or(|m| sd.min_args <= m);
                let lo_ok = sd.max_args.is_none_or(|m| m >= dst.min_args);
                if !(hi_ok && lo_ok) {
                    out.push(finding(
                        SpecSeverity::Error,
                        "arity-incompatible",
                        ev.name.clone(),
                        format!(
                            "send to `{t}` carries {}..{} operands but the target accepts {}..{}",
                            sd.min_args,
                            sd.max_args.map_or("*".to_string(), |m| m.to_string()),
                            dst.min_args,
                            dst.max_args.map_or("*".to_string(), |m| m.to_string()),
                        ),
                    ));
                }
            }
        }
        for r in &ev.resumes {
            if spec.event(r).is_none() {
                out.push(finding(
                    SpecSeverity::Warning,
                    "unknown-resume-target",
                    ev.name.clone(),
                    format!("declares resumption at `{r}`, which no thread-type declares"),
                ));
            }
        }
        if let Some(root) = &ev.on {
            if spec.event(root).is_none() {
                out.push(finding(
                    SpecSeverity::Error,
                    "unknown-group-root",
                    ev.name.clone(),
                    format!("declares membership in group `{root}`, which no thread-type declares"),
                ));
            }
        }
        // Reachability: host-injected, a send/resume target, or a member
        // of a thread group (whose root delivers it via continuations).
        if !ev.from_host && ev.on.is_none() && !targeted.contains(ev.name.as_str()) {
            out.push(finding(
                SpecSeverity::Warning,
                "unreachable-event",
                ev.name.clone(),
                "not host-injected and never the target of a declared send or \
                 resumption; likely a stale or misspelled declaration"
                    .to_string(),
            ));
        }
    }
    out
}

/// Static analysis of one program spec: all three check families plus the
/// certification itself, bundled for rendering.
#[derive(Clone, Debug)]
pub struct SpecAnalysis {
    pub app: String,
    pub n_threads: usize,
    pub n_events: usize,
    pub cert: Certification,
    pub findings: Vec<SpecFinding>,
    /// Runtime-enforcement findings (`--enforce` only; empty for pure
    /// static runs).
    pub enforced: Option<Vec<SpecFinding>>,
}

impl SpecAnalysis {
    /// Analyze `spec` against `mc`'s per-lane capacities. Pure: reads the
    /// declarations only, never constructs an engine.
    pub fn of(app: &str, spec: &ProgramSpec, mc: &MachineConfig) -> SpecAnalysis {
        let cert = certify(spec);
        let mut findings = Vec::new();
        findings.extend(consistency_findings(spec));
        findings.extend(wait_cycle_findings(spec));
        findings.extend(bound_findings(&cert, mc));
        findings.sort();
        findings.dedup();
        SpecAnalysis {
            app: app.to_string(),
            n_threads: spec.threads.len(),
            n_events: spec.events().count(),
            cert,
            findings,
            enforced: None,
        }
    }

    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .chain(self.enforced.iter().flatten())
            .filter(|f| f.severity == SpecSeverity::Error)
            .count()
    }

    /// Clean = zero error-severity findings (static and, if run,
    /// enforcement).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Append this spec's `udspec/v1` object to a JSON writer.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.key("app").string(&self.app);
        w.key("threads").u64(self.n_threads as u64);
        w.key("events").u64(self.n_events as u64);
        w.key("clean").bool(self.is_clean());
        w.key("certification").begin_obj();
        let bound = |w: &mut JsonWriter, b: Bound| {
            match b {
                Bound::Finite(n) => w.u64(n),
                Bound::Unbounded => w.null(),
            };
        };
        w.key("threads_per_lane");
        bound(w, self.cert.threads_per_lane);
        w.key("spm_words_per_lane");
        bound(w, self.cert.spm_words_per_lane);
        w.key("groups").begin_arr();
        for g in &self.cert.groups {
            w.begin_obj();
            w.key("root").string(&g.root);
            w.key("live");
            bound(w, g.live);
            w.key("derived").bool(g.derived);
            w.key("spm");
            bound(w, g.spm);
            w.end_obj();
        }
        w.end_arr();
        w.end_obj(); // certification
        let write_findings = |w: &mut JsonWriter, fs: &[SpecFinding]| {
            w.begin_arr();
            for f in fs {
                w.begin_obj();
                w.key("check").string(f.check);
                w.key("severity").string(f.severity.as_str());
                w.key("subject").string(&f.subject);
                w.key("message").string(&f.message);
                w.end_obj();
            }
            w.end_arr();
        };
        w.key("findings");
        write_findings(w, &self.findings);
        if let Some(enf) = &self.enforced {
            w.key("enforced");
            write_findings(w, enf);
        }
        w.end_obj();
    }

    /// Human-readable rendering (the CLI's default output).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "udspec: {}  ({} thread type(s), {} event(s); certified {} thread(s), \
             {} spm word(s) per lane)\n",
            self.app,
            self.n_threads,
            self.n_events,
            self.cert.threads_per_lane,
            self.cert.spm_words_per_lane,
        ));
        if self.findings.is_empty() {
            s.push_str("  findings: none\n");
        } else {
            for f in &self.findings {
                s.push_str(&format!(
                    "  [{}] {} {}: {}\n",
                    f.severity, f.check, f.subject, f.message
                ));
            }
        }
        match &self.enforced {
            None => {}
            Some(enf) if enf.is_empty() => s.push_str("  enforcement: clean\n"),
            Some(enf) => {
                for f in enf {
                    s.push_str(&format!(
                        "  enforcement[{}] {} {}: {}\n",
                        f.severity, f.check, f.subject, f.message
                    ));
                }
            }
        }
        s
    }
}

/// Render a declared [`ProgramSpec`] as a Graphviz digraph: one cluster
/// per declared thread class, one node per event, solid edges for
/// declared sends (labelled with their fanout; `cont` marks
/// continuation-carrying waits, `new` thread-spawning sends) and dashed
/// edges for same-thread resumptions. Host-injected events render as
/// doubled boxes. Parity with `udcheck --dot`, but from declarations
/// alone — no run, no probe.
pub fn spec_to_dot(spec: &ProgramSpec, title: &str) -> String {
    // Stable node ids: position in the spec's sorted event order.
    let ids: BTreeMap<&str, usize> = spec
        .events()
        .enumerate()
        .map(|(i, e)| (e.name.as_str(), i))
        .collect();
    let mut s = String::new();
    s.push_str(&format!("digraph \"{title}\" {{\n  rankdir=LR;\n"));
    for (ci, (tname, t)) in spec.threads.iter().enumerate() {
        s.push_str(&format!(
            "  subgraph cluster_{ci} {{\n    label=\"{tname}\";\n"
        ));
        for e in t.events.values() {
            let shape = if e.from_host { "box, peripheries=2" } else { "box" };
            let short = e.name.rsplit("::").next().unwrap_or(&e.name);
            s.push_str(&format!(
                "    n{} [label=\"{}\\nargs {}..{}\", shape={}];\n",
                ids[e.name.as_str()],
                short,
                e.min_args,
                e.max_args.map_or("*".to_string(), |m| m.to_string()),
                shape
            ));
        }
        s.push_str("  }\n");
    }
    for e in spec.events() {
        let src = ids[e.name.as_str()];
        for sd in &e.sends {
            let fan = match sd.fanout {
                Bound::Finite(n) => format!("x{n}"),
                Bound::Unbounded => "x*".to_string(),
            };
            let mut label = fan;
            if sd.with_cont {
                label.push_str(" cont");
            }
            if sd.to_new {
                label.push_str(" new");
            }
            let style = if sd.conditional { ", style=dotted" } else { "" };
            for t in &sd.targets {
                if let Some(&dst) = ids.get(t.as_str()) {
                    s.push_str(&format!(
                        "  n{src} -> n{dst} [label=\"{label}\"{style}];\n"
                    ));
                }
            }
        }
        for r in &e.resumes {
            if let Some(&dst) = ids.get(r.as_str()) {
                s.push_str(&format!("  n{src} -> n{dst} [style=dashed];\n"));
            }
        }
    }
    s.push_str("}\n");
    s
}

/// Render a full `udspec/v1` document over a set of analyses.
pub fn render_spec_document(analyses: &[SpecAnalysis]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("schema").string("udspec/v1");
    let errors: usize = analyses.iter().map(|a| a.errors()).sum();
    w.key("errors").u64(errors as u64);
    w.key("clean").bool(analyses.iter().all(|a| a.is_clean()));
    w.key("specs").begin_arr();
    for a in analyses {
        a.write_json(&mut w);
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

/// Seeded-defect fixture: two worker classes that unconditionally wait on
/// each other — the canonical wait-for deadlock shape `udspec` must flag
/// without running anything.
pub fn wait_cycle_fixture() -> ProgramSpec {
    let mut s = ProgramSpec::new();
    {
        let t = s.thread("fix_drv");
        let e = t.event("start");
        e.args(0, 0).from_host().live_per_lane(1).terminates();
        e.send("fix_a::work", |sd| {
            sd.args(1, 1).to_new().with_cont();
        });
    }
    {
        let t = s.thread("fix_a");
        let e = t.event("work");
        e.args(1, 1).replies().terminates();
        e.send("fix_b::work", |sd| {
            sd.args(1, 1).to_new().with_cont();
        });
    }
    {
        let t = s.thread("fix_b");
        let e = t.event("work");
        e.args(1, 1).replies().terminates();
        e.send("fix_a::work", |sd| {
            sd.args(1, 1).to_new().with_cont();
        });
    }
    s
}

/// Seeded-defect fixture: a host-seeded group whose declared scratchpad
/// footprint and spawn fan-out both exceed a small machine's per-lane
/// capacities.
pub fn spm_blowup_fixture() -> ProgramSpec {
    let mut s = ProgramSpec::new();
    {
        let t = s.thread("fix_drv");
        let e = t.event("start");
        e.args(0, 0).from_host().live_per_lane(1).terminates();
        // 1024 workers per driver on one lane: blows a 512-context table.
        e.send("fix_wk::run", |sd| {
            sd.args(2, 2).to_new().fanout(1024);
        });
    }
    {
        let t = s.thread("fix_wk");
        // 64 Ki words of combining cache per lane: blows an 8 Ki pad.
        t.event("run")
            .args(2, 2)
            .terminates()
            .spm_per_lane(65536);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> MachineConfig {
        MachineConfig::small(2, 2, 8)
    }

    #[test]
    fn wait_cycle_fixture_is_flagged_statically() {
        let a = SpecAnalysis::of("fixture", &wait_cycle_fixture(), &caps());
        assert!(!a.is_clean());
        assert!(a
            .findings
            .iter()
            .any(|f| f.check == "wait-cycle" && f.severity == SpecSeverity::Error));
    }

    #[test]
    fn ordered_self_recursion_is_info() {
        let mut s = ProgramSpec::new();
        {
            let t = s.thread("tree");
            let e = t.event("relay");
            e.args(1, 1).from_host().live_per_lane(1).terminates();
            e.send("tree::relay", |sd| {
                sd.args(1, 1).to_new().with_cont().conditional().ordered();
            });
        }
        let a = SpecAnalysis::of("tree", &s, &caps());
        let f = a
            .findings
            .iter()
            .find(|f| f.check == "wait-cycle")
            .expect("self-loop reported");
        assert_eq!(f.severity, SpecSeverity::Info);
        assert!(a.is_clean());
    }

    #[test]
    fn spm_blowup_fixture_is_flagged_statically() {
        let a = SpecAnalysis::of("fixture", &spm_blowup_fixture(), &caps());
        assert!(!a.is_clean());
        assert!(a.findings.iter().any(|f| f.check == "spm-bound-capacity"));
        assert!(a.findings.iter().any(|f| f.check == "thread-bound-capacity"));
    }

    #[test]
    fn consistency_flags_typos_and_arity_gaps() {
        let mut s = ProgramSpec::new();
        {
            let t = s.thread("drv");
            let e = t.event("start");
            e.from_host().terminates();
            e.send("wk::rnu", |sd| {
                sd.args(2, 2).to_new();
            });
            e.send("wk::run", |sd| {
                sd.args(9, 9).to_new();
            });
        }
        s.thread("wk").event("run").args(2, 2).terminates();
        s.thread("wk").event("stale").args(0, 0).terminates();
        let fs = consistency_findings(&s);
        assert!(fs
            .iter()
            .any(|f| f.check == "unknown-send-target" && f.message.contains("wk::rnu")));
        assert!(fs
            .iter()
            .any(|f| f.check == "arity-incompatible" && f.message.contains("wk::run")));
        assert!(fs
            .iter()
            .any(|f| f.check == "unreachable-event" && f.subject == "wk::stale"));
    }

    #[test]
    fn spec_document_schema_and_determinism() {
        let a = SpecAnalysis::of("fixture", &wait_cycle_fixture(), &caps());
        let d1 = render_spec_document(std::slice::from_ref(&a));
        let d2 = render_spec_document(std::slice::from_ref(&a));
        assert_eq!(d1, d2);
        assert!(d1.contains("\"schema\":\"udspec/v1\""));
    }
}
