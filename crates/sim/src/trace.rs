//! Event tracing for the simulator: a zero-cost-when-disabled record of
//! lane executions, message transits, DRAM transaction stages, phase
//! markers and counter samples, plus an exporter to the Chrome
//! `trace_event` JSON format (open the file in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)).
//!
//! **Observer-effect guarantee:** recording never touches simulated time,
//! costs, or calendar sequence numbers. A traced run and an untraced run
//! of the same program produce byte-identical simulated results; the
//! engine's tests assert this.

use std::collections::HashMap; // det-lint: allow — entry-only counters below

use crate::json::JsonWriter;

/// Stage of a DRAM transaction as it moves through the memory pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DramStage {
    /// Request reached the owning node's memory channel queue.
    Arrive,
    /// Channel service (bandwidth + latency) complete.
    Served,
    /// Response arrived back at the issuing lane.
    Respond,
}

/// One recorded trace event. Times are simulated ticks.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A lane executed one event handler from `start` to `end` (busy span).
    Exec {
        lane: u32,
        /// Handler label; resolve to a name via the engine's handler table.
        label: u16,
        tid: u16,
        start: u64,
        end: u64,
    },
    /// A message in flight from lane `src` to lane `dst`.
    MsgTransit {
        id: u64,
        src: u32,
        dst: u32,
        label: u16,
        depart: u64,
        arrive: u64,
    },
    /// A DRAM transaction stage on `node`'s memory channel.
    Dram {
        id: u64,
        stage: DramStage,
        node: u32,
        time: u64,
        bytes: u64,
        write: bool,
    },
    /// A named counter sample (running machine-wide value).
    Counter {
        name: &'static str,
        time: u64,
        value: i64,
    },
    /// A fabric link traversal: cumulative bytes carried by the directed
    /// link `src -> dst` as recorded by the injecting shard `node`. For
    /// the uniform topology the crossbar appears as pseudo-node
    /// `nodes()`. Rendered as a per-link congestion counter.
    Link {
        src: u32,
        dst: u32,
        node: u32,
        time: u64,
        value: u64,
    },
}

/// A named interval of the run (e.g. a KVMSR map phase). `end` is
/// `u64::MAX` while the span is open.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSpan {
    pub name: String,
    pub start: u64,
    pub end: u64,
}

impl PhaseSpan {
    pub fn is_open(&self) -> bool {
        self.end == u64::MAX
    }

    /// Span length with the open end clamped to `final_tick`.
    pub fn cycles(&self, final_tick: u64) -> u64 {
        self.end.min(final_tick).saturating_sub(self.start)
    }
}

/// Collects [`TraceEvent`]s during a run. Owned by the engine; present
/// only when event tracing is enabled. `Clone` deep-copies the recording
/// so snapshots can rewind the trace alongside machine state.
#[derive(Clone, Default)]
pub struct Tracer {
    pub events: Vec<TraceEvent>,
    next_id: u64,
    // det-lint: allow — entry-only lookups keyed by &'static str; never
    // iterated, so hash order cannot reach any output.
    counters: HashMap<&'static str, i64>,
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// A tracer whose ids start above `base`. Per-shard tracers use
    /// disjoint id ranges (`shard << 48`) so correlation ids stay unique
    /// after the per-shard traces are merged.
    pub fn with_id_base(base: u64) -> Tracer {
        Tracer {
            next_id: base,
            ..Tracer::default()
        }
    }

    /// Fresh id correlating the stages of an async operation. Allocated
    /// from a tracer-private counter so tracing cannot perturb the
    /// engine's calendar sequence numbers.
    pub fn alloc_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Adjust the named running counter by `delta` and record a sample.
    pub fn counter_add(&mut self, name: &'static str, delta: i64, time: u64) {
        let v = self.counters.entry(name).or_insert(0);
        *v += delta;
        let value = *v;
        self.events.push(TraceEvent::Counter { name, time, value });
    }
}

/// Export to Chrome `trace_event` JSON.
///
/// Track layout: process 0 is the "machine" (phase spans and counters);
/// process `n + 1` is node `n`, with one thread row per lane (lane index
/// within the node). Message transits and DRAM transactions render as
/// legacy async `b`/`n`/`e` events correlated by id.
///
/// `names` maps handler labels to event names; `final_tick` clamps open
/// phase spans. Timestamps are microseconds of simulated time
/// (`ticks / (clock_ghz * 1000)`).
pub fn chrome_trace_json(
    events: &[TraceEvent],
    phases: &[PhaseSpan],
    names: &[String],
    lanes_per_node: u32,
    clock_ghz: f64,
    final_tick: u64,
) -> String {
    let ts = |ticks: u64| -> f64 { ticks as f64 / (clock_ghz * 1000.0) };
    let name_of = |label: u16| -> &str {
        names
            .get(label as usize)
            .map(|s| s.as_str())
            .unwrap_or("<unknown>")
    };
    let lanes_per_node = lanes_per_node.max(1);

    let mut w = JsonWriter::new();
    w.begin_obj().key("displayTimeUnit").string("ms");
    w.key("traceEvents").begin_arr();

    let mut max_pid = 0u32;

    // Phase spans on the machine track.
    for p in phases {
        let end = p.end.min(final_tick);
        w.begin_obj()
            .key("name")
            .string(&p.name)
            .key("cat")
            .string("phase")
            .key("ph")
            .string("X")
            .key("pid")
            .u64(0)
            .key("tid")
            .u64(0)
            .key("ts")
            .f64(ts(p.start))
            .key("dur")
            .f64(ts(end.saturating_sub(p.start)))
            .end_obj();
    }

    for ev in events {
        match ev {
            TraceEvent::Exec {
                lane,
                label,
                tid,
                start,
                end,
            } => {
                let pid = lane / lanes_per_node + 1;
                max_pid = max_pid.max(pid);
                w.begin_obj()
                    .key("name")
                    .string(name_of(*label))
                    .key("cat")
                    .string("lane")
                    .key("ph")
                    .string("X")
                    .key("pid")
                    .u64(pid as u64)
                    .key("tid")
                    .u64((lane % lanes_per_node) as u64)
                    .key("ts")
                    .f64(ts(*start))
                    .key("dur")
                    .f64(ts(end - start))
                    .key("args")
                    .begin_obj()
                    .key("sim_tid")
                    .u64(*tid as u64)
                    .end_obj()
                    .end_obj();
            }
            TraceEvent::MsgTransit {
                id,
                src,
                dst,
                label,
                depart,
                arrive,
            } => {
                let pid = src / lanes_per_node + 1;
                max_pid = max_pid.max(pid);
                for (ph, t) in [("b", *depart), ("e", *arrive)] {
                    w.begin_obj()
                        .key("name")
                        .string(name_of(*label))
                        .key("cat")
                        .string("msg")
                        .key("ph")
                        .string(ph)
                        .key("id")
                        .u64(*id)
                        .key("pid")
                        .u64(pid as u64)
                        .key("tid")
                        .u64((src % lanes_per_node) as u64)
                        .key("ts")
                        .f64(ts(t));
                    if ph == "b" {
                        w.key("args")
                            .begin_obj()
                            .key("dst_lane")
                            .u64(*dst as u64)
                            .end_obj();
                    }
                    w.end_obj();
                }
            }
            TraceEvent::Dram {
                id,
                stage,
                node,
                time,
                bytes,
                write,
            } => {
                let pid = node + 1;
                max_pid = max_pid.max(pid);
                let ph = match stage {
                    DramStage::Arrive => "b",
                    DramStage::Served => "n",
                    DramStage::Respond => "e",
                };
                w.begin_obj()
                    .key("name")
                    .string(if *write { "dram_write" } else { "dram_read" })
                    .key("cat")
                    .string("dram")
                    .key("ph")
                    .string(ph)
                    .key("id")
                    .u64(*id)
                    .key("pid")
                    .u64(pid as u64)
                    .key("tid")
                    .u64(lanes_per_node as u64) // a dedicated row below the lanes
                    .key("ts")
                    .f64(ts(*time));
                if *stage == DramStage::Arrive {
                    w.key("args")
                        .begin_obj()
                        .key("bytes")
                        .u64(*bytes)
                        .end_obj();
                }
                w.end_obj();
            }
            TraceEvent::Link {
                src,
                dst,
                node,
                time,
                value,
            } => {
                let pid = node + 1;
                max_pid = max_pid.max(pid);
                w.begin_obj()
                    .key("name")
                    .string(&format!("link n{}->n{} B", src, dst))
                    .key("cat")
                    .string("link")
                    .key("ph")
                    .string("C")
                    .key("pid")
                    .u64(pid as u64)
                    .key("ts")
                    .f64(ts(*time))
                    .key("args")
                    .begin_obj()
                    .key("value")
                    .u64(*value)
                    .end_obj()
                    .end_obj();
            }
            TraceEvent::Counter { name, time, value } => {
                w.begin_obj()
                    .key("name")
                    .string(name)
                    .key("ph")
                    .string("C")
                    .key("pid")
                    .u64(0)
                    .key("ts")
                    .f64(ts(*time))
                    .key("args")
                    .begin_obj()
                    .key("value")
                    .i64(*value)
                    .end_obj()
                    .end_obj();
            }
        }
    }

    // Process-name metadata rows.
    for pid in 0..=max_pid {
        let pname = if pid == 0 {
            "machine".to_string()
        } else {
            format!("node {}", pid - 1)
        };
        w.begin_obj()
            .key("name")
            .string("process_name")
            .key("ph")
            .string("M")
            .key("pid")
            .u64(pid as u64)
            .key("args")
            .begin_obj()
            .key("name")
            .string(&pname)
            .end_obj()
            .end_obj();
    }

    w.end_arr().end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn phase_span_clamps_open_end() {
        let p = PhaseSpan {
            name: "map".into(),
            start: 100,
            end: u64::MAX,
        };
        assert!(p.is_open());
        assert_eq!(p.cycles(500), 400);
    }

    #[test]
    fn counter_tracks_running_value() {
        let mut t = Tracer::new();
        t.counter_add("x", 2, 10);
        t.counter_add("x", -1, 20);
        let vals: Vec<i64> = t
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::Counter { value, .. } => *value,
                _ => panic!(),
            })
            .collect();
        assert_eq!(vals, vec![2, 1]);
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_shape() {
        let events = vec![
            TraceEvent::Exec {
                lane: 5,
                label: 0,
                tid: 1,
                start: 0,
                end: 10,
            },
            TraceEvent::MsgTransit {
                id: 1,
                src: 5,
                dst: 9,
                label: 0,
                depart: 10,
                arrive: 14,
            },
            TraceEvent::Dram {
                id: 2,
                stage: DramStage::Arrive,
                node: 1,
                time: 30,
                bytes: 64,
                write: false,
            },
            TraceEvent::Counter {
                name: "inflight",
                time: 12,
                value: 3,
            },
            TraceEvent::Link {
                src: 0,
                dst: 1,
                node: 0,
                time: 14,
                value: 72,
            },
        ];
        let phases = vec![PhaseSpan {
            name: "map".into(),
            start: 0,
            end: u64::MAX,
        }];
        let names = vec!["handler_a".to_string()];
        let s = chrome_trace_json(&events, &phases, &names, 8, 2.0, 100);
        let v = JsonValue::parse(&s).expect("valid JSON");
        assert_eq!(v.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 phase + 1 exec + 2 msg halves + 1 dram + 1 counter + metadata.
        assert!(evs.len() >= 6);
        // Exec lane 5 of 8-lane nodes -> pid 1, tid 5.
        let exec = evs
            .iter()
            .find(|e| e.get("cat").map(|c| c.as_str()) == Some(Some("lane")))
            .unwrap();
        assert_eq!(exec.get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(exec.get("tid").unwrap().as_u64(), Some(5));
        // 10 ticks at 2 GHz = 5 ns = 0.005 us.
        assert_eq!(exec.get("dur").unwrap().as_f64(), Some(0.005));
        // Link traversal renders as a per-link counter on the node track.
        let link = evs
            .iter()
            .find(|e| e.get("cat").map(|c| c.as_str()) == Some(Some("link")))
            .unwrap();
        assert_eq!(link.get("name").unwrap().as_str(), Some("link n0->n1 B"));
        assert_eq!(link.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(link.get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(
            link.get("args").unwrap().get("value").unwrap().as_u64(),
            Some(72)
        );
        // Metadata names both processes.
        let metas: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").map(|c| c.as_str()) == Some(Some("M")))
            .collect();
        assert!(metas.len() >= 2);
    }
}
