//! Triangle Counting on KVMSR+UDWeave (§4.3).
//!
//! `kv_map` runs on every vertex `x`, streams its neighbor list, and emits
//! one tuple per edge pair `<x, y>` with `x > y` (no double counting).
//! `kv_reduce` tasks — Hash-bound on a combination of the vertex names —
//! intersect the two neighbor lists by *streaming both* from DRAM
//! (the paper's second TC version, §4.3.3: more memory bandwidth, better
//! load balance; the scratchpad-reuse variant is `TcVariant::SpdReuse`).
//!
//! Every x>y pair contributes |N(x) ∩ N(y)| to a global counter; on an
//! undirected simple graph that total is exactly 3× the triangle count.

use drammalloc::{Layout, Region};
use kvmsr::{JobSpec, Kvmsr, MapBinding, MapTask, Outcome};
use std::sync::Mutex;
use std::sync::Arc;
use udweave::LaneSet;
use updown_graph::{Csr, DeviceCsr};
use updown_sim::{Engine, EventWord, MachineConfig, NetworkId, Metrics, VAddr};

/// Which reduce implementation to use (the §4.3.3 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcVariant {
    /// Stream both neighbor lists from DRAM (paper's final version).
    DualStream,
    /// Load the smaller list into scratchpad, then stream the larger one
    /// against it (paper's early version: captures reuse, limits balance).
    SpdReuse,
}

#[derive(Clone, Debug)]
pub struct TcConfig {
    pub machine: MachineConfig,
    pub mem_nodes: Option<u32>,
    pub block_size: u64,
    pub variant: TcVariant,
    /// Map binding: Block (default) or PBMW (robust to skew, §4.3.3).
    pub map_binding: MapBinding,
    /// Record an event trace; the result carries the Chrome-trace JSON.
    pub trace: bool,
}

impl TcConfig {
    pub fn new(nodes: u32) -> TcConfig {
        TcConfig {
            machine: MachineConfig::with_nodes(nodes),
            mem_nodes: None,
            block_size: 32 * 1024,
            variant: TcVariant::DualStream,
            map_binding: MapBinding::Block,
            trace: false,
        }
    }
}

pub struct TcResult {
    pub triangles: u64,
    pub final_tick: u64,
    pub pairs: u64,
    pub report: Metrics,
    /// Chrome-trace JSON, present when the config asked for a trace.
    pub trace_json: Option<String>,
}

#[derive(Clone, Default)]
struct TcMapSt {
    task: Option<MapTask>,
    x: u64,
    deg: u64,
    loaded: u64,
}

/// Prefetch depth per side for the streamed intersection: enough chunks in
/// flight to cover remote DRAM latency instead of one round trip per chunk.
const TC_PREFETCH: u64 = 4;

/// Reduce-side intersection state: chunks stream with prefetch and are
/// reassembled in order (responses can arrive out of order), merging as
/// data becomes contiguous.
#[derive(Clone, Default)]
struct TcRedSt {
    job: u32,
    deg: [u64; 2],
    nl: [u64; 2],
    /// Next word offset to request, per side.
    fetched: [u64; 2],
    /// Requests in flight, per side.
    inflight: [u32; 2],
    /// Next expected in-order offset, per side.
    expected: [u64; 2],
    /// Out-of-order chunks awaiting reassembly: offset -> words.
    stash: [std::collections::BTreeMap<u64, Vec<u64>>; 2],
    buf: [std::collections::VecDeque<u64>; 2],
    recs_pending: u32,
    count: u64,
    /// Intersection result known; draining remaining in-flight responses
    /// before the thread can retire.
    done: bool,
    spd_list: Vec<u64>, // SpdReuse: the cached smaller list
}

updown_sim::snap_state!(TcMapSt, "tc.map", { task, x, deg, loaded });
updown_sim::snap_state!(TcRedSt, "tc.reduce", {
    job, deg, nl, fetched, inflight, expected, stash, buf, recs_pending,
    count, done, spd_list,
});

/// The udspec declaration of the TC protocol: the KVMSR base plus the
/// map-side streaming, both reduce-side intersection variants, and the
/// host driver events (docs/udspec.md).
pub fn spec() -> udweave::ProgramSpec {
    let mut spec = kvmsr::spec();
    spec.event_mut("kvmsr::kv_map")
        .resumes("thread::tc_map::returnRec");
    spec.event_mut("kvmsr::kv_reduce")
        .resumes("thread::tc_reduce::returnRec");
    {
        let m = spec.thread("thread::tc_map");
        m.event("returnRec")
            .args(2, 2)
            .on("kvmsr::kv_map")
            .resumes("thread::tc_map::returnRead")
            .send("kvmsr_launcher::task_done", |s| {
                s.args(1, 1).conditional();
            })
            .terminates();
        m.event("returnRead")
            .args(1, 8)
            .on("kvmsr::kv_map")
            .send("kvmsr::kv_reduce", |s| {
                s.args(2, 2).to_new().conditional().fanout_unbounded();
            })
            .send("kvmsr_launcher::task_done", |s| {
                s.args(1, 1).conditional();
            })
            .terminates();
    }
    {
        let r = spec.thread("thread::tc_reduce");
        r.event("returnRec")
            .args(3, 3)
            .on("kvmsr::kv_reduce")
            .resumes("thread::tc_reduce::returnChunk")
            .resumes("thread::tc_reduce::loadSpd")
            .terminates();
        r.event("returnChunk")
            .args(2, 9)
            .on("kvmsr::kv_reduce")
            .resumes("thread::tc_reduce::returnChunk")
            .terminates();
        r.event("loadSpd")
            .args(2, 9)
            .on("kvmsr::kv_reduce")
            .resumes("thread::tc_reduce::loadSpd")
            .resumes("thread::tc_reduce::streamVsSpd")
            .terminates();
        r.event("streamVsSpd")
            .args(2, 9)
            .on("kvmsr::kv_reduce")
            .resumes("thread::tc_reduce::streamVsSpd")
            .terminates();
    }
    {
        let d = spec.thread("main_master");
        d.event("init_tc")
            .args(0, 0)
            .from_host()
            .live_per_lane(1)
            .send("kvmsr_master::start", |s| {
                s.args(3, 3).to_new().with_cont();
            })
            .terminates();
        d.event("tc_launcher_done").args(2, 2).terminates();
    }
    // The job's completion reply spawns the driver's done handler as a
    // fresh thread; declare the edge on every master event that can
    // finish the run so the static flow graph reaches it.
    for ev in ["maps_done", "poll_result", "epilogue_done"] {
        spec.event_mut(&format!("kvmsr_master::{ev}"))
            .send("main_master::tc_launcher_done", |s| {
                s.args(2, 2).to_new().conditional();
            });
    }
    spec
}

/// Workload descriptor for `udcost` (docs/analysis.md): predicted event
/// counts for [`run_tc`] on this exact graph and config.
///
/// Map-side counts are exact (one streamed read chunk per 8 neighbors,
/// one reduce pair per edge `y < x`). Reduce-side chunk counts depend on
/// where the streaming intersection early-exits; we approximate the merge
/// as consuming `min(deg x, deg y)` entries per side, clipped by the
/// prefetch depth over-fetch — exact would require replaying every merge.
pub fn workload(g: &Csr, cfg: &TcConfig) -> udweave::Workload {
    let mc = &cfg.machine;
    let n = g.n() as f64;
    let mut return_read = 0.0;
    let mut pairs = 0.0;
    let mut dual_chunks = 0.0;
    let mut load_spd = 0.0;
    let mut stream_spd = 0.0;
    for x in 0..g.n() {
        let dx = g.degree(x) as f64;
        if dx > 0.0 {
            return_read += (dx / 8.0).ceil();
        }
        for &y in g.neigh(x) {
            if y >= x {
                continue;
            }
            pairs += 1.0;
            let dy = g.degree(y) as f64;
            let (lo, hi) = if dx < dy { (dx, dy) } else { (dy, dx) };
            let budget = (lo / 8.0).ceil() + TC_PREFETCH as f64;
            dual_chunks += budget.min((dx / 8.0).ceil()) + budget.min((dy / 8.0).ceil());
            load_spd += (lo / 8.0).ceil();
            stream_spd += (hi / 8.0).ceil();
        }
    }

    let mut w = udweave::Workload::new();
    kvmsr::skeleton_workload(&mut w, mc, 1.0, n, 1.0);
    w.count("thread::tc_map::returnRec", n)
        .count("thread::tc_map::returnRead", return_read)
        .count("kvmsr::kv_reduce", pairs)
        .count("thread::tc_reduce::returnRec", 2.0 * pairs)
        .count("main_master::init_tc", 1.0)
        .count("main_master::tc_launcher_done", 1.0);
    match cfg.variant {
        TcVariant::DualStream => {
            w.count("thread::tc_reduce::returnChunk", dual_chunks)
                .count("thread::tc_reduce::loadSpd", 0.0)
                .count("thread::tc_reduce::streamVsSpd", 0.0);
        }
        TcVariant::SpdReuse => {
            w.count("thread::tc_reduce::returnChunk", 0.0)
                .count("thread::tc_reduce::loadSpd", load_spd)
                .count("thread::tc_reduce::streamVsSpd", stream_spd);
        }
    }
    w
}

/// Count triangles of an undirected, deduplicated, neighbor-sorted CSR.
pub fn run_tc(g: &Csr, cfg: &TcConfig) -> TcResult {
    let mc = &cfg.machine;
    let mut eng = Engine::new(mc.clone());
    eng.register_state_codec::<TcMapSt>();
    eng.register_state_codec::<TcRedSt>();
    if cfg.trace {
        eng.enable_event_trace();
    }
    let mem_nodes = cfg.mem_nodes.unwrap_or(mc.nodes).min(mc.nodes);
    let layout = Layout::cyclic_bs(mem_nodes, cfg.block_size);

    let n = g.n() as u64;
    let dcsr = DeviceCsr::load(&mut eng, g, 2, layout, layout, |_v, deg, nl| {
        vec![deg as u64, nl.0]
    });
    let total = Region::alloc_words(&mut eng, 1, Layout::cyclic(1)).expect("total");

    let rt = Kvmsr::install(&mut eng);
    let set = LaneSet::all(mc);
    let variant = cfg.variant;

    // ---- reduce-side events -------------------------------------------------
    let red_fin = {
        let rt = rt.clone();
        move |ctx: &mut updown_sim::EventCtx<'_>, st: &mut TcRedSt| {
            if st.count > 0 {
                ctx.dram_fetch_add_u64(total.base, st.count, None, None);
            }
            rt.reduce_done(ctx, kvmsr::JobId(st.job));
            ctx.yield_terminate();
        }
    };

    // Merge whatever is buffered; returns true if the intersection is
    // complete (a drained side has no more data).
    fn merge(st: &mut TcRedSt, ctx: &mut updown_sim::EventCtx<'_>) -> bool {
        let mut popped = 0u64;
        while let (Some(&a), Some(&b)) = (st.buf[0].front(), st.buf[1].front()) {
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    st.buf[0].pop_front();
                }
                std::cmp::Ordering::Greater => {
                    st.buf[1].pop_front();
                }
                std::cmp::Ordering::Equal => {
                    st.count += 1;
                    st.buf[0].pop_front();
                    st.buf[1].pop_front();
                }
            }
            popped += 1;
        }
        ctx.charge(2 * popped + 1);
        (st.buf[0].is_empty() && st.fetched[0] == st.deg[0] && st.inflight[0] == 0)
            || (st.buf[1].is_empty() && st.fetched[1] == st.deg[1] && st.inflight[1] == 0)
    }

    /// Top up a side's pipeline to the prefetch depth. Chunk responses
    /// carry `side | offset << 1` tags for in-order reassembly.
    fn request_next(
        st: &mut TcRedSt,
        ctx: &mut updown_sim::EventCtx<'_>,
        side: usize,
        ret: updown_sim::EventLabel,
    ) {
        while st.fetched[side] < st.deg[side] && (st.inflight[side] as u64) < TC_PREFETCH {
            st.inflight[side] += 1;
            let off = st.fetched[side];
            let k = (st.deg[side] - off).min(8);
            ctx.send_dram_read_tagged(
                VAddr(st.nl[side]).word(off),
                k as usize,
                ret,
                (off << 1) | side as u64,
            );
            st.fetched[side] += k;
        }
    }

    let red_fin2 = red_fin.clone();
    let red_chunk_label: Arc<Mutex<updown_sim::EventLabel>> =
        Arc::new(Mutex::new(updown_sim::EventLabel(u16::MAX)));
    let red_chunk = {
        let rcl = red_chunk_label.clone();
        udweave::event::<TcRedSt>(&mut eng, "tc_reduce::returnChunk", move |ctx, st| {
            let args = ctx.args();
            let tag = args[args.len() - 1];
            let side = (tag & 1) as usize;
            let off = tag >> 1;
            st.inflight[side] -= 1;
            let n = args.len() - 1;
            let words: Vec<u64> = (0..n).map(|i| ctx.arg(i)).collect();
            st.stash[side].insert(off, words);
            // Drain the contiguous prefix into the merge buffer.
            while let Some(w) = st.stash[side].remove(&st.expected[side]) {
                st.expected[side] += w.len() as u64;
                st.buf[side].extend(w);
            }
            if !st.done && merge(st, ctx) {
                st.done = true;
            }
            if st.done {
                // Count settled; wait out any prefetched responses.
                if st.inflight[0] == 0 && st.inflight[1] == 0 {
                    red_fin2(ctx, st);
                }
                return;
            }
            let me = *rcl.lock().unwrap();
            request_next(st, ctx, 0, me);
            request_next(st, ctx, 1, me);
        })
    };
    *red_chunk_label.lock().unwrap() = red_chunk;

    // SpdReuse: the smaller list is already in scratchpad (st.spd_list);
    // stream the larger one against it.
    let red_fin3 = red_fin.clone();
    let red_stream_spd = udweave::event::<TcRedSt>(&mut eng, "tc_reduce::streamVsSpd", move |ctx, st| {
        // Probe order does not matter against the cached list, so no
        // reassembly needed — just count in-flight chunks.
        let n = ctx.args().len() - 1; // last arg is the tag
        st.inflight[0] -= 1;
        for i in 0..n {
            // Binary search over the scratchpad copy (charged per probe).
            let w = ctx.arg(i);
            if st.spd_list.binary_search(&w).is_ok() {
                st.count += 1;
            }
        }
        let probes = n as u64 * (st.spd_list.len().max(2) as u64).ilog2() as u64;
        ctx.charge(probes + 2);
        let me = ctx.cur_evw().label();
        while st.fetched[0] < st.deg[0] && (st.inflight[0] as u64) < TC_PREFETCH {
            let k = (st.deg[0] - st.fetched[0]).min(8);
            ctx.send_dram_read_tagged(VAddr(st.nl[0]).word(st.fetched[0]), k as usize, me, 0);
            st.fetched[0] += k;
            st.inflight[0] += 1;
        }
        if st.fetched[0] == st.deg[0] && st.inflight[0] == 0 {
            red_fin3(ctx, st);
        }
    });

    let red_load_spd = {
        let red_fin4 = red_fin.clone();
        udweave::event::<TcRedSt>(&mut eng, "tc_reduce::loadSpd", move |ctx, st| {
            let n = ctx.args().len() - 1;
            for i in 0..n {
                st.spd_list.push(ctx.arg(i));
            }
            ctx.charge(n as u64); // spd stores
            st.fetched[1] += n as u64;
            if st.fetched[1] < st.deg[1] {
                let k = (st.deg[1] - st.fetched[1]).min(8);
                let me = ctx.cur_evw().label();
                ctx.send_dram_read_tagged(VAddr(st.nl[1]).word(st.fetched[1]), k as usize, me, 1);
            } else {
                // Smaller list cached; stream the larger side (pipelined).
                if st.deg[0] == 0 || st.spd_list.is_empty() {
                    red_fin4(ctx, st);
                    return;
                }
                while st.fetched[0] < st.deg[0] && (st.inflight[0] as u64) < TC_PREFETCH {
                    let k = (st.deg[0] - st.fetched[0]).min(8);
                    ctx.send_dram_read_tagged(
                        VAddr(st.nl[0]).word(st.fetched[0]),
                        k as usize,
                        red_stream_spd,
                        0,
                    );
                    st.fetched[0] += k;
                    st.inflight[0] += 1;
                }
            }
        })
    };

    let red_rec = {
        let red_fin5 = red_fin.clone();
        udweave::event::<TcRedSt>(&mut eng, "tc_reduce::returnRec", move |ctx, st| {
            let side = ctx.arg(2) as usize;
            st.deg[side] = ctx.arg(0);
            st.nl[side] = ctx.arg(1);
            st.recs_pending -= 1;
            if st.recs_pending > 0 {
                return;
            }
            if st.deg[0] == 0 || st.deg[1] == 0 {
                red_fin5(ctx, st);
                return;
            }
            match variant {
                TcVariant::DualStream => {
                    // Fill both pipelines; merge proceeds on arrivals.
                    request_next(st, ctx, 0, red_chunk);
                    request_next(st, ctx, 1, red_chunk);
                }
                TcVariant::SpdReuse => {
                    // Ensure side 1 is the smaller list (swap if needed).
                    if st.deg[0] < st.deg[1] {
                        st.deg.swap(0, 1);
                        st.nl.swap(0, 1);
                    }
                    let k = st.deg[1].min(8);
                    ctx.send_dram_read_tagged(VAddr(st.nl[1]).word(0), k as usize, red_load_spd, 1);
                }
            }
        })
    };

    // ---- map-side events ---------------------------------------------------
    let map_nl = {
        let rt = rt.clone();
        udweave::event::<TcMapSt>(&mut eng, "tc_map::returnRead", move |ctx, st| {
            let mut task = st.task.expect("nl before map");
            let nargs = ctx.args().len();
            for i in 0..nargs {
                let y = ctx.arg(i);
                if y < st.x {
                    let key = (st.x << 32) | y;
                    rt.emit(ctx, &mut task, key, &[]);
                }
            }
            ctx.charge(nargs as u64);
            st.loaded += nargs as u64;
            st.task = Some(task);
            if st.loaded == st.deg {
                rt.map_done(ctx, &task);
                ctx.yield_terminate();
            }
        })
    };
    let map_rec = {
        let rt = rt.clone();
        udweave::event::<TcMapSt>(&mut eng, "tc_map::returnRec", move |ctx, st| {
            st.deg = ctx.arg(0);
            let nl_va = ctx.arg(1);
            if st.deg == 0 {
                let task = st.task.expect("rec before map");
                rt.map_done(ctx, &task);
                ctx.yield_terminate();
                return;
            }
            let mut off = 0u64;
            while off < st.deg {
                let k = (st.deg - off).min(8);
                ctx.send_dram_read(VAddr(nl_va).word(off), k as usize, map_nl);
                off += k;
            }
        })
    };

    let job = rt.define_job(
        JobSpec::new("tc", set, move |ctx, task, _rt| {
            let st = ctx.state_mut::<TcMapSt>();
            st.task = Some(*task);
            st.x = task.key;
            ctx.send_dram_read(dcsr.vertex(task.key), 2, map_rec);
            Outcome::Async
        })
        .map_binding(cfg.map_binding)
        .with_reduce(move |ctx, task, _vals, _rt| {
            let st = ctx.state_mut::<TcRedSt>();
            st.job = task.job.0;
            st.recs_pending = 2;
            let x = task.key >> 32;
            let y = task.key & 0xFFFF_FFFF;
            ctx.send_dram_read_tagged(dcsr.vertex(x), 2, red_rec, 0);
            ctx.send_dram_read_tagged(dcsr.vertex(y), 2, red_rec, 1);
            Outcome::Async
        }),
    );

    // ---- driver -----------------------------------------------------------
    let pairs: Arc<Mutex<u64>> = Arc::default();
    // Handler-visible host state must survive rewinds (docs/checkpoint.md).
    eng.host_state_cell(&pairs);
    let p2 = pairs.clone();
    let done = udweave::simple_event(&mut eng, "main_master::tc_launcher_done", move |ctx| {
        *p2.lock().unwrap() = ctx.arg(1);
        ctx.stop();
        ctx.yield_terminate();
    });
    let rt2 = rt.clone();
    let init = udweave::simple_event(&mut eng, "main_master::init_tc", move |ctx| {
        let cont = EventWord::new(ctx.nwid(), done);
        rt2.start_from(ctx, job, n, 0, cont);
        ctx.yield_terminate();
    });

    eng.send(EventWord::new(NetworkId(0), init), [], EventWord::IGNORE);
    let report = eng.run();

    let raw = eng.mem().read_u64(total.base).unwrap();
    assert_eq!(raw % 3, 0, "pair-intersection total must be 3 × triangles");
    let pairs_out = *pairs.lock().unwrap();
    let trace_json = cfg.trace.then(|| eng.chrome_trace_json());
    eng.finish_replay("tc");
    TcResult {
        triangles: raw / 3,
        final_tick: report.final_tick,
        pairs: pairs_out,
        report,
        trace_json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use updown_graph::algorithms;
    use updown_graph::generators::{erdos_renyi, rmat, RmatParams};
    use updown_graph::preprocess::dedup_sort;
    use updown_graph::EdgeList;

    fn undirected(el: EdgeList) -> Csr {
        let mut g = Csr::from_edges(&dedup_sort(el.symmetrize()));
        g.sort_neighbors();
        g
    }

    fn check(g: &Csr, machine: MachineConfig, variant: TcVariant) -> TcResult {
        let mut cfg = TcConfig::new(1);
        cfg.machine = machine;
        cfg.variant = variant;
        let res = run_tc(g, &cfg);
        assert_eq!(res.triangles, algorithms::triangle_count(g));
        res
    }

    #[test]
    fn known_small_graph() {
        let g = undirected(EdgeList::new(
            4,
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)],
        ));
        let r = check(&g, MachineConfig::small(1, 2, 4), TcVariant::DualStream);
        assert_eq!(r.triangles, 2);
    }

    #[test]
    fn rmat_dual_stream() {
        let g = undirected(rmat(7, RmatParams::default(), 6));
        check(&g, MachineConfig::small(2, 2, 8), TcVariant::DualStream);
    }

    #[test]
    fn rmat_spd_reuse_matches() {
        let g = undirected(rmat(7, RmatParams::default(), 6));
        check(&g, MachineConfig::small(2, 2, 8), TcVariant::SpdReuse);
    }

    #[test]
    fn er_with_pbmw_binding() {
        let g = undirected(erdos_renyi(7, 6, 4));
        let mut cfg = TcConfig::new(1);
        cfg.machine = MachineConfig::small(1, 2, 16);
        cfg.map_binding = MapBinding::Pbmw { chunk: 4 };
        let res = run_tc(&g, &cfg);
        assert_eq!(res.triangles, algorithms::triangle_count(&g));
    }

    #[test]
    fn triangle_free_graph() {
        // Bipartite: no triangles.
        let el = EdgeList::new(6, vec![(0, 3), (0, 4), (1, 4), (1, 5), (2, 3), (2, 5)]);
        let g = undirected(el);
        let r = check(&g, MachineConfig::small(1, 1, 8), TcVariant::DualStream);
        assert_eq!(r.triangles, 0);
    }
}
