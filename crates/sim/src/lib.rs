#![forbid(unsafe_code)]
//! # updown-sim
//!
//! A deterministic discrete-event simulator for the **UpDown graph
//! supercomputer** described in *"KVMSR+UDWeave: Extreme-Scaling with
//! Fine-grained Parallelism on the UpDown Graph Supercomputer"* (SC
//! Workshops '25). It models:
//!
//! - the lane / accelerator / node hierarchy (64 lanes per accelerator,
//!   32 accelerators per node, §3 of the paper),
//! - event-driven lanes with software-managed thread contexts executing
//!   10–100 instruction tasks atomically, under the Table-2 cost model,
//! - single-cycle message sends with tiered network latency and per-node
//!   NIC injection bandwidth (PolarStar abstracted, Figure 6),
//! - a shared global address space with hardware block-cyclic translation
//!   descriptors ("swizzle masks", §2.4) and per-node DRAM channel
//!   bandwidth/latency,
//! - BASIM_PRINT-style traces matching the artifact's log format.
//!
//! The [`udweave`](../udweave) crate layers the UDWeave programming API on
//! top; [`kvmsr`](../kvmsr) builds the map-shuffle-reduce runtime on that.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use updown_sim::{Engine, EventWord, MachineConfig, NetworkId};
//!
//! let mut eng = Engine::new(MachineConfig::small(1, 1, 4));
//! let hello = eng.register("hello", Arc::new(|ctx: &mut updown_sim::EventCtx| {
//!     ctx.yield_terminate();
//! }));
//! eng.send(EventWord::new(NetworkId(0), hello), [], EventWord::IGNORE);
//! let report = eng.run();
//! assert_eq!(report.stats.events_executed, 1);
//! ```

pub mod calendar;
pub mod config;
pub mod engine;
pub mod ids;
pub mod json;
pub mod lane;
pub mod memory;
pub mod message;
pub mod network;
pub mod probe;
pub mod race;
pub mod sched;
pub mod snapshot;
pub mod spec;
pub mod stats;
pub mod trace;

pub use calendar::CalendarQueue;
pub use config::{
    MachineConfig, MemoryConfig, NetworkConfig, NetworkConfigBuilder, OpCosts,
};
pub use engine::{Engine, EngineRun, EventCtx, Handler, Recording, Snapshot};
pub use lane::SimState;
pub use sched::{Parallel, Scheduler, Sequential};
pub use ids::{EventLabel, EventWord, NetworkId, ThreadId};
pub use memory::{GlobalMemory, MemError, TranslationDescriptor, VAddr};
pub use message::Message;
pub use network::{Fabric, Link, LinkId, Nics, Topology, TopologyKind};
pub use probe::{DiagKind, Diagnostic, ProbeReport, ProtocolProbe};
pub use snapshot::{
    ReplayCheck, ReplayRunReport, SnapField, SnapReader, SnapState, SnapWriter, SnapshotError,
    SNAP_SCHEMA,
};
pub use race::{Footprint, RaceFilter, RaceKind, RaceProbe, RaceReport, RaceSite, RaceSpace, Region};
pub use spec::{
    Bound, Certification, EventDecl, GroupBound, ProgramSpec, SendDecl, SpecFinding, SpecSeverity,
    ThreadDecl, Workload,
};
pub use stats::{
    Counters, FabricMetrics, HostSchedStats, LaneMetrics, LinkMetrics, Metrics, NodeMetrics,
    SchedMetrics, UTIL_HIST_BUCKETS,
};
pub use trace::{DramStage, PhaseSpan, TraceEvent, Tracer};

#[allow(deprecated)]
pub use stats::{RunReport, Stats};
