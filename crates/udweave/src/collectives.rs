//! Collective communication over lane sets: k-ary broadcast trees with
//! aggregated acknowledgement. KVMSR's launch/termination hierarchy and
//! BFS's master/worker rounds are built from this.
//!
//! The tree is a heap-shaped k-ary tree over the positions of a contiguous
//! [`LaneSet`]; depth is `log_k(n)`, so launch/sync overhead grows
//! logarithmically with machine size — one of the real costs that bounds
//! strong scaling of small problems (§5.2).

use updown_sim::spec::ProgramSpec;
use updown_sim::{Engine, EventLabel, EventWord, NetworkId};

/// A contiguous set of lanes targeted by a collective or a KVMSR
/// invocation ("each KVMSR invocation targets a set of lanes", §2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneSet {
    pub base: u32,
    pub count: u32,
}

impl LaneSet {
    pub fn new(base: NetworkId, count: u32) -> LaneSet {
        assert!(count > 0, "empty lane set");
        LaneSet {
            base: base.0,
            count,
        }
    }

    /// The whole machine.
    pub fn all(cfg: &updown_sim::MachineConfig) -> LaneSet {
        LaneSet {
            base: 0,
            count: cfg.total_lanes(),
        }
    }

    #[inline]
    pub fn lane(&self, pos: u32) -> NetworkId {
        debug_assert!(pos < self.count);
        NetworkId(self.base + pos)
    }

    #[inline]
    pub fn contains(&self, nwid: NetworkId) -> bool {
        nwid.0 >= self.base && nwid.0 < self.base + self.count
    }

    #[inline]
    pub fn position_of(&self, nwid: NetworkId) -> u32 {
        debug_assert!(self.contains(nwid));
        nwid.0 - self.base
    }

    pub fn iter(&self) -> impl Iterator<Item = NetworkId> + '_ {
        (self.base..self.base + self.count).map(NetworkId)
    }
}

/// Children of heap-tree position `i` with fanout `k` in a tree of `n`
/// positions.
pub fn heap_children(n: u32, i: u32, k: u32) -> impl Iterator<Item = u32> {
    let first = (i as u64) * k as u64 + 1;
    let last = (first + k as u64).min(n as u64);
    (first..last).map(|x| x as u32)
}

/// Parent of heap-tree position `i` (`i > 0`) with fanout `k`.
#[inline]
pub fn heap_parent(i: u32, k: u32) -> u32 {
    (i - 1) / k
}

/// Number of ack values aggregated element-wise by the tree.
pub const ACK_WORDS: usize = 2;

/// A broadcast-with-aggregated-ack tree, installed once per engine.
///
/// Protocol: send a message to `start` on `set.lane(0)` with args
/// `[set.base, set.count, user_label, 0, payload...]` and a continuation.
/// Every lane in the set receives a `user_label` event (new thread) with
/// args `[payload...]` and a continuation to which it must eventually send
/// `ACK_WORDS` u64 values (possibly asynchronously). The element-wise sums
/// over all lanes are delivered to the original continuation.
#[derive(Clone, Copy, Debug)]
pub struct TreeComm {
    pub start: EventLabel,
    pub fanout: u32,
}

#[derive(Clone)]
struct RelayState {
    pending: u32,
    acc: [u64; ACK_WORDS],
    parent: EventWord,
}

impl Default for RelayState {
    fn default() -> Self {
        RelayState {
            pending: 0,
            acc: [0; ACK_WORDS],
            parent: EventWord::IGNORE,
        }
    }
}

updown_sim::snap_state!(RelayState, "udweave.tree_relay", { pending, acc, parent });

impl TreeComm {
    pub fn install(eng: &mut Engine, name: &str, fanout: u32) -> TreeComm {
        assert!(fanout >= 2);
        eng.register_state_codec::<RelayState>();
        // Registration order: gather first so relay can reference it.
        // Labels are allocated sequentially; we register a placeholder-free
        // pair by registering gather, then relay.
        let gather_name = format!("{name}::gather");
        let relay_name = format!("{name}::relay");

        let gather = crate::program::event::<RelayState>(eng, &gather_name, |ctx, st| {
            st.acc[0] = st.acc[0].wrapping_add(ctx.arg(0));
            st.acc[1] = st.acc[1].wrapping_add(if ctx.args().len() > 1 { ctx.arg(1) } else { 0 });
            st.pending -= 1;
            if st.pending == 0 {
                let parent = st.parent;
                let acc = st.acc;
                if !parent.is_ignore() {
                    ctx.send_event(parent, acc.to_vec(), EventWord::IGNORE);
                }
                ctx.yield_terminate();
            }
        });

        let relay = crate::program::event::<RelayState>(eng, &relay_name, move |ctx, st| {
            let base = ctx.arg(0) as u32;
            let count = ctx.arg(1) as u32;
            let user_label = EventLabel(ctx.arg(2) as u16);
            let pos = ctx.arg(3) as u32;
            let payload: Vec<u64> = ctx.args()[4..].to_vec();
            let set = LaneSet { base, count };

            st.parent = ctx.cont();
            st.pending = 1; // the local user ack
            let my_gather = ctx.self_event(gather);
            let my_label = ctx.cur_evw().label();

            for c in heap_children(count, pos, fanout) {
                st.pending += 1;
                let mut args = vec![base as u64, count as u64, user_label.0 as u64, c as u64];
                args.extend_from_slice(&payload);
                ctx.send_event(EventWord::new(set.lane(c), my_label), args, my_gather);
            }
            // Local delivery: a fresh thread on this lane runs the user event.
            ctx.send_event(
                EventWord::new(set.lane(pos), user_label),
                payload,
                my_gather,
            );
            // Thread stays alive in `gather` until all acks arrive.
        });

        TreeComm {
            start: relay,
            fanout,
        }
    }

    /// Declare the relay/gather protocol of a tree installed as `name`
    /// into a udspec [`ProgramSpec`] (docs/udspec.md). `user_targets` are
    /// the full event names the tree may deliver on every lane; `payload`
    /// is the inclusive range of payload word counts broadcast through
    /// it. Pass the same `name` and `fanout` given to [`TreeComm::install`].
    ///
    /// The relay's self-recursion is declared `ordered`: each hop strictly
    /// shrinks the heap interval, so the relay→relay wait cycle is
    /// progress-ordered rather than a deadlock candidate.
    pub fn spec_decl(
        spec: &mut ProgramSpec,
        name: &str,
        fanout: u32,
        user_targets: &[&str],
        payload: (u32, u32),
    ) {
        let (pmin, pmax) = payload;
        let relay_full = format!("thread::{name}::relay");
        let t = spec.thread(&format!("thread::{name}"));
        {
            let relay = t.event("relay");
            relay.args(4 + pmin, 4 + pmax).live_per_lane(1);
            relay.send(&relay_full, |s| {
                s.args(4 + pmin, 4 + pmax)
                    .to_new()
                    .with_cont()
                    .conditional()
                    .ordered()
                    .fanout(u64::from(fanout));
            });
            relay.send_any(user_targets, |s| {
                s.args(pmin, pmax).to_new().with_cont();
            });
        }
        t.event("gather")
            .args(1, 2)
            .on(&relay_full)
            .replies()
            .terminates();
    }

    /// Build the start-message arguments for broadcasting `payload` over
    /// `set`, invoking `user_label` on each lane.
    pub fn start_args(&self, set: LaneSet, user_label: EventLabel, payload: &[u64]) -> Vec<u64> {
        let mut args = vec![
            set.base as u64,
            set.count as u64,
            user_label.0 as u64,
            0u64,
        ];
        args.extend_from_slice(payload);
        args
    }

    /// Convenience for host-side kicks and in-event starts: the event word
    /// to address.
    pub fn start_evw(&self, set: LaneSet) -> EventWord {
        EventWord::new(set.lane(0), self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::simple_event;
    use std::sync::Mutex;
    use std::sync::Arc;
    use updown_sim::{Engine, MachineConfig};

    #[test]
    fn heap_tree_shape() {
        let kids: Vec<u32> = heap_children(10, 0, 3).collect();
        assert_eq!(kids, vec![1, 2, 3]);
        let kids: Vec<u32> = heap_children(10, 3, 3).collect();
        assert_eq!(kids, vec![] as Vec<u32>); // 10,11,12 out of range
        let kids: Vec<u32> = heap_children(10, 2, 3).collect();
        assert_eq!(kids, vec![7, 8, 9]);
        for i in 1..10 {
            let p = heap_parent(i, 3);
            assert!(heap_children(10, p, 3).any(|c| c == i));
        }
    }

    #[test]
    fn lane_set_round_trips() {
        let s = LaneSet::new(NetworkId(100), 50);
        assert!(s.contains(NetworkId(100)));
        assert!(s.contains(NetworkId(149)));
        assert!(!s.contains(NetworkId(150)));
        assert_eq!(s.position_of(NetworkId(120)), 20);
        assert_eq!(s.lane(20), NetworkId(120));
        assert_eq!(s.iter().count(), 50);
    }

    #[test]
    fn broadcast_reaches_every_lane_and_sums_acks() {
        let cfg = MachineConfig::small(2, 2, 8); // 32 lanes
        let mut eng = Engine::new(cfg);
        let hits: Arc<Mutex<Vec<u32>>> = Arc::default();
        let hits2 = hits.clone();
        let user = simple_event(&mut eng, "user", move |ctx| {
            hits2.lock().unwrap().push(ctx.nwid().0);
            // Ack: [1, payload value].
            let v = ctx.arg(0);
            ctx.send_reply([1u64, v]);
            ctx.yield_terminate();
        });
        let tree = TreeComm::install(&mut eng, "bcast", 4);
        let result: Arc<Mutex<(u64, u64)>> = Arc::default();
        let result2 = result.clone();
        let done = simple_event(&mut eng, "done", move |ctx| {
            *result2.lock().unwrap() = (ctx.arg(0), ctx.arg(1));
            ctx.stop();
        });
        let set = LaneSet::new(NetworkId(0), 32);
        let kick = simple_event(&mut eng, "kick", move |ctx| {
            let args = tree.start_args(set, user, &[7]);
            let dst = tree.start_evw(set);
            let cont = EventWord::new(ctx.nwid(), done);
            ctx.send_event(dst, args, cont);
            ctx.yield_terminate();
        });
        eng.send(EventWord::new(NetworkId(0), kick), [], EventWord::IGNORE);
        eng.run();
        let mut h = hits.lock().unwrap().clone();
        h.sort_unstable();
        assert_eq!(h, (0..32).collect::<Vec<u32>>(), "every lane exactly once");
        assert_eq!(*result.lock().unwrap(), (32, 32 * 7));
    }

    #[test]
    fn broadcast_on_offset_subset() {
        let cfg = MachineConfig::small(1, 2, 8);
        let mut eng = Engine::new(cfg);
        let hits: Arc<Mutex<Vec<u32>>> = Arc::default();
        let hits2 = hits.clone();
        let user = simple_event(&mut eng, "user", move |ctx| {
            hits2.lock().unwrap().push(ctx.nwid().0);
            ctx.send_reply([1u64, 0]);
            ctx.yield_terminate();
        });
        let tree = TreeComm::install(&mut eng, "bcast", 2);
        let set = LaneSet::new(NetworkId(5), 7);
        let kick = simple_event(&mut eng, "kick", move |ctx| {
            let args = tree.start_args(set, user, &[]);
            ctx.send_event(tree.start_evw(set), args, EventWord::IGNORE);
            ctx.yield_terminate();
        });
        eng.send(EventWord::new(NetworkId(0), kick), [], EventWord::IGNORE);
        eng.run();
        let mut h = hits.lock().unwrap().clone();
        h.sort_unstable();
        assert_eq!(h, (5..12).collect::<Vec<u32>>());
    }
}
