#![forbid(unsafe_code)]
//! Cargo-native port of the `tools/determinism_lint.py` forbid-attribute
//! check: every workspace crate root and binary must open with
//! `#![forbid(unsafe_code)]`, so the repository's no-unsafe guarantee
//! cannot silently regress even where the Python lint isn't run. The
//! full content lint (HashMap/wall-clock/thread-identity) stays in the
//! Python tool; this test pins the one check whose failure mode is a
//! silently-added file.

use std::path::{Path, PathBuf};

/// The same roots as `FORBID_GLOBS` in tools/determinism_lint.py:
/// `crates/*/src/lib.rs`, `crates/*/src/main.rs`, `crates/*/src/bin/*.rs`
/// and `tests/src/lib.rs`.
fn forbid_candidates(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)
        .unwrap_or_else(|e| panic!("reading {}: {e}", crates.display()))
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        for stem in ["lib.rs", "main.rs"] {
            let p = dir.join("src").join(stem);
            if p.is_file() {
                out.push(p);
            }
        }
        let bin = dir.join("src").join("bin");
        if bin.is_dir() {
            let mut bins: Vec<PathBuf> = std::fs::read_dir(&bin)
                .unwrap()
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                .collect();
            bins.sort();
            out.extend(bins);
        }
    }
    let tests_lib = root.join("tests/src/lib.rs");
    if tests_lib.is_file() {
        out.push(tests_lib);
    }
    out
}

#[test]
fn every_crate_root_and_binary_forbids_unsafe() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    assert!(
        root.join("Cargo.toml").is_file(),
        "cannot locate workspace root from {}",
        root.display()
    );
    let candidates = forbid_candidates(&root);
    assert!(
        candidates.len() >= 10,
        "glob found only {} crate roots/binaries — lint scope broke",
        candidates.len()
    );
    let mut missing = Vec::new();
    for path in &candidates {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let first = text.trim_start().lines().next().unwrap_or("").trim();
        if first != "#![forbid(unsafe_code)]" {
            missing.push(format!(
                "{}: first line is `{first}`",
                path.strip_prefix(&root).unwrap_or(path).display()
            ));
        }
    }
    assert!(
        missing.is_empty(),
        "crate roots/binaries missing #![forbid(unsafe_code)] as their first attribute:\n{}",
        missing.join("\n")
    );
}
