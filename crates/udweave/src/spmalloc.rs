//! spMalloc: the scratchpad allocator from Table 5 of the paper (83 LoC in
//! UDWeave there). Bump allocation over the lane-private scratchpad plus a
//! small typed-slice veneer.

use updown_sim::EventCtx;

/// A slice of lane-private scratchpad, word-granular.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpSlice {
    pub base: u32,
    pub len: u32,
}

/// Allocate `words` of this lane's scratchpad. Panics when exhausted, like
/// hardware running out of SPD — callers size their working sets.
pub fn sp_malloc(ctx: &mut EventCtx<'_>, words: u32) -> SpSlice {
    let base = ctx.spm_alloc(words);
    SpSlice { base, len: words }
}

impl SpSlice {
    /// Load word `i` (1 cycle).
    #[inline]
    pub fn get(&self, ctx: &mut EventCtx<'_>, i: u32) -> u64 {
        assert!(i < self.len, "SpSlice index {i} out of {}", self.len);
        ctx.spm_read(self.base + i)
    }

    /// Store word `i` (1 cycle).
    #[inline]
    pub fn set(&self, ctx: &mut EventCtx<'_>, i: u32, v: u64) {
        assert!(i < self.len, "SpSlice index {i} out of {}", self.len);
        ctx.spm_write(self.base + i, v);
    }

    /// f64 view of word `i`.
    #[inline]
    pub fn get_f64(&self, ctx: &mut EventCtx<'_>, i: u32) -> f64 {
        f64::from_bits(self.get(ctx, i))
    }

    #[inline]
    pub fn set_f64(&self, ctx: &mut EventCtx<'_>, i: u32, v: f64) {
        self.set(ctx, i, v.to_bits());
    }

    /// Atomic-class load of word `i`: part of a lane-serialized commutative
    /// read-modify-write (e.g. the combining cache). Same cost as [`get`],
    /// but [`RaceProbe`](updown_sim::RaceProbe) treats unordered
    /// atomic-class pairs as serialized, not racing (see `docs/udrace.md`).
    ///
    /// [`get`]: SpSlice::get
    #[inline]
    pub fn get_atomic(&self, ctx: &mut EventCtx<'_>, i: u32) -> u64 {
        assert!(i < self.len, "SpSlice index {i} out of {}", self.len);
        ctx.spm_read_atomic(self.base + i)
    }

    /// Atomic-class store of word `i`; see [`get_atomic`](SpSlice::get_atomic).
    #[inline]
    pub fn set_atomic(&self, ctx: &mut EventCtx<'_>, i: u32, v: u64) {
        assert!(i < self.len, "SpSlice index {i} out of {}", self.len);
        ctx.spm_write_atomic(self.base + i, v);
    }

    /// Atomic-class f64 load; see [`get_atomic`](SpSlice::get_atomic).
    #[inline]
    pub fn get_f64_atomic(&self, ctx: &mut EventCtx<'_>, i: u32) -> f64 {
        f64::from_bits(self.get_atomic(ctx, i))
    }

    /// Atomic-class f64 store; see [`get_atomic`](SpSlice::get_atomic).
    #[inline]
    pub fn set_f64_atomic(&self, ctx: &mut EventCtx<'_>, i: u32, v: f64) {
        self.set_atomic(ctx, i, v.to_bits());
    }

    /// Sub-slice view.
    pub fn slice(&self, off: u32, len: u32) -> SpSlice {
        assert!(off + len <= self.len);
        SpSlice {
            base: self.base + off,
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::simple_event;
    use std::sync::Mutex;
    use std::sync::Arc;
    use updown_sim::{Engine, EventWord, MachineConfig, NetworkId};

    #[test]
    fn alloc_and_rw() {
        let mut eng = Engine::new(MachineConfig::small(1, 1, 1));
        let ok: Arc<Mutex<bool>> = Arc::default();
        let ok2 = ok.clone();
        let go = simple_event(&mut eng, "go", move |ctx| {
            let a = sp_malloc(ctx, 8);
            let b = sp_malloc(ctx, 4);
            assert_ne!(a.base, b.base, "allocations are disjoint");
            a.set(ctx, 0, 11);
            b.set(ctx, 0, 22);
            assert_eq!(a.get(ctx, 0), 11);
            assert_eq!(b.get(ctx, 0), 22);
            a.set_f64(ctx, 3, 2.5);
            assert_eq!(a.get_f64(ctx, 3), 2.5);
            let s = a.slice(2, 2);
            s.set(ctx, 1, 99);
            assert_eq!(a.get(ctx, 3), 99);
            *ok2.lock().unwrap() = true;
            ctx.yield_terminate();
        });
        eng.send(EventWord::new(NetworkId(0), go), [], EventWord::IGNORE);
        eng.run();
        assert!(*ok.lock().unwrap());
    }

    #[test]
    #[should_panic(expected = "scratchpad exhausted")]
    fn exhaustion_panics() {
        let mut cfg = MachineConfig::small(1, 1, 1);
        cfg.spm_words = 16;
        let mut eng = Engine::new(cfg);
        let go = simple_event(&mut eng, "go", move |ctx| {
            let _ = sp_malloc(ctx, 32);
        });
        eng.send(EventWord::new(NetworkId(0), go), [], EventWord::IGNORE);
        eng.run();
    }
}
