//! The discrete-event engine: executes events on lanes under the Table-2
//! cost model, routes messages through the network model, and services DRAM
//! requests through per-node memory channels.
//!
//! # Sharded conservative-window execution
//!
//! The machine is partitioned into **shards, one per node**. Each shard
//! ([`EngineCore`]) owns its node's lanes, event calendar, NIC and memory
//! channel, so a shard can execute independently as long as it does not run
//! past the point where another shard could still affect it.
//!
//! That point is governed by the **lookahead**: every cross-node effect
//! (message delivery, remote DRAM request or response) traverses the
//! system network and pays at least the topology's minimum transit time
//! ([`Topology::min_transit`] — the full inter-node latency for the
//! uniform model, one hop for routed topologies), so an event executing
//! at time `t` on one shard cannot influence another shard before
//! `t + lookahead`. The
//! scheduler therefore runs in *windows*: a coordinator computes the global
//! floor (earliest pending entry anywhere), opens the window
//! `[floor, floor + lookahead)`, and every shard executes exactly its
//! calendar entries below the horizon. Cross-shard effects produced inside
//! a window land at or beyond the horizon and are exchanged through
//! deterministic per-destination mailboxes at the window boundary.
//!
//! **Determinism:** shard count equals node count (fixed by the
//! [`MachineConfig`]), mailbox entries are merged in `(source shard,
//! source sequence)` order, and the single-threaded scheduler runs the
//! *same* window loop with one worker — so the merged event order, every
//! counter, and every trace span are byte-identical across schedulers and
//! thread counts.

use std::any::Any;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Barrier, Mutex};

use crate::calendar::CalendarQueue;
use crate::config::MachineConfig;
use crate::ids::{EventLabel, EventWord, NetworkId, ThreadId};
use crate::lane::Lane;
use crate::memory::{GlobalMemory, MemChannels, VAddr};
use crate::message::Message;
use crate::network::{Fabric, LinkId, Nics, Topology};
use crate::probe::{DiagKind, Diagnostic, ProtocolProbe};
use crate::race::{RaceAccess, RaceExec, ThreadKey};
use crate::sched::{Parallel, Scheduler, Sequential};
use crate::stats::{
    Counters, FabricMetrics, LaneMetrics, LinkMetrics, Metrics, NodeMetrics, UTIL_HIST_BUCKETS,
};
use crate::trace::{DramStage, PhaseSpan, TraceEvent, Tracer};

/// Number of lanes in the [`Metrics::hot_lanes`] report.
const HOT_LANES_TOP_K: usize = 8;

/// Number of links in the [`FabricMetrics::top_links`] report.
const FABRIC_TOP_LINKS: usize = 16;

/// A handler executes one event. It may read/write its thread state, send
/// messages, and issue DRAM requests through the [`EventCtx`]. Handlers
/// are `Send + Sync` so shards can execute on scheduler worker threads.
pub type Handler = Arc<dyn Fn(&mut EventCtx<'_>) + Send + Sync>;

struct HandlerEntry {
    name: String,
    f: Handler,
}

/// A DRAM transaction payload, applied when channel service completes on
/// the owning shard.
#[derive(Clone, Debug)]
enum MemOp {
    Read {
        va: VAddr,
        nwords: u8,
        ret: EventWord,
        tag: Option<u64>,
    },
    Write {
        va: VAddr,
        words: Vec<u64>,
        ack: Option<EventWord>,
        tag: Option<u64>,
    },
    AddU64 {
        va: VAddr,
        delta: u64,
        ret: Option<EventWord>,
        tag: Option<u64>,
    },
    AddF64 {
        va: VAddr,
        delta: f64,
        ret: Option<EventWord>,
        tag: Option<u64>,
    },
}

impl MemOp {
    /// Payload bytes moved by the transaction (response for reads, data
    /// for writes).
    fn bytes(&self) -> u64 {
        match self {
            MemOp::Read { nwords, .. } => *nwords as u64 * 8,
            MemOp::Write { words, .. } => words.len() as u64 * 8,
            MemOp::AddU64 { .. } | MemOp::AddF64 { .. } => 8,
        }
    }

    fn is_write(&self) -> bool {
        !matches!(self, MemOp::Read { .. })
    }
}

/// The response of a completed DRAM transaction travelling back to the
/// issuing shard. Memory contents were already updated at service time on
/// the owning shard (the deterministic serialization point); only the
/// pre-built reply message is still in flight.
#[derive(Clone, Debug)]
struct MemResp {
    reply: Option<Message>,
    bytes: u64,
    write: bool,
}

/// DRAM transactions are staged through the calendar so each shared
/// resource (source NIC, memory channel, owner NIC) is reserved at the
/// moment the transaction actually reaches it — reservations happen in
/// time order, which keeps the FIFO pipelines honest.
#[derive(Clone, Debug)]
enum Action {
    Deliver(Message),
    LaneRun(u32),
    /// Request has arrived at the owning node's memory channel.
    /// `trace_id` correlates the stages of one transaction in the event
    /// trace; 0 when tracing is off. `race` is the issuer's race context
    /// when a [`RaceProbe`] is attached.
    MemArrive {
        op: MemOp,
        src_node: u32,
        owner: u32,
        trace_id: u64,
        race: Option<RaceAccess>,
    },
    /// Channel service complete (memory already updated); send the
    /// response back.
    MemServed {
        op: MemOp,
        src_node: u32,
        owner: u32,
        trace_id: u64,
        race: Option<RaceAccess>,
    },
    /// Response arrived back at the issuing shard: deliver the reply.
    MemDone {
        resp: MemResp,
        owner: u32,
        trace_id: u64,
    },
}

/// Slab storage for pending [`Action`]s. The calendar holds bare `u32`
/// slot indices, so queue operations never move action payloads, and the
/// freelist recycles slots across windows — after warm-up the steady state
/// allocates nothing per event.
#[derive(Default)]
struct ActionArena {
    slots: Vec<Option<Action>>,
    free: Vec<u32>,
}

impl ActionArena {
    fn insert(&mut self, action: Action) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(action);
                i
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Some(action));
                i
            }
        }
    }

    fn take(&mut self, i: u32) -> Action {
        let a = self.slots[i as usize].take().expect("live arena slot");
        self.free.push(i);
        a
    }
}

/// Outgoing effects collected during one event execution; the engine turns
/// them into scheduled actions at the event's completion time.
enum Outgoing {
    Msg(Message, u64),
    DramRead {
        va: VAddr,
        nwords: u8,
        ret: EventWord,
        tag: Option<u64>,
        race: Option<RaceAccess>,
    },
    DramWrite {
        va: VAddr,
        words: Vec<u64>,
        ack: Option<EventWord>,
        tag: Option<u64>,
        race: Option<RaceAccess>,
    },
    AtomicAddU64 {
        va: VAddr,
        delta: u64,
        ret: Option<EventWord>,
        tag: Option<u64>,
        race: Option<RaceAccess>,
    },
    AtomicAddF64 {
        va: VAddr,
        delta: f64,
        ret: Option<EventWord>,
        tag: Option<u64>,
        race: Option<RaceAccess>,
    },
}

/// A calendar entry crossing shards at a window boundary. Merged into the
/// destination calendar in `(src, order)` order, which reproduces the
/// exact creation order a serial exchange would have produced.
struct XEntry {
    time: u64,
    src: u32,
    order: u64,
    action: Action,
}

/// State shared read-only by all shards during a run.
pub(crate) struct Shared {
    cfg: MachineConfig,
    mem: Arc<GlobalMemory>,
    handlers: Vec<HandlerEntry>,
    /// The system-network topology ([`MachineConfig::net`]`.topology`),
    /// shared read-only across shards.
    topo: Arc<dyn Topology>,
    /// Conservative time-window length: the minimum time by which any
    /// cross-node effect can trail its injection
    /// ([`Topology::min_transit`], floored at 1).
    lookahead: u64,
}

/// One shard of the machine: a node's lanes, calendar and per-node
/// resources. The unit of parallel execution.
pub(crate) struct EngineCore {
    /// Shard id == node id.
    id: u32,
    /// Global network id of this shard's first lane.
    base_lane: u32,
    now: u64,
    calendar: CalendarQueue,
    arena: ActionArena,
    lanes: Vec<Lane>,
    /// This node's memory channel (single-node instance, index 0).
    channel: MemChannels,
    /// This node's NIC (single-node instance, index 0).
    nic: Nics,
    /// Per-link fabric counters for traffic *injected by this shard*
    /// (sum-merged across shards at metrics time).
    fabric: Fabric,
    stats: Counters,
    stop: bool,
    trace: Option<Vec<String>>,
    /// Event tracer; present only when event tracing is enabled. All
    /// recording paths are read-only with respect to simulated time,
    /// costs, and calendar sequence numbers (zero observer effect).
    tracer: Option<Tracer>,
    /// Device-side phase spans opened on this shard, in begin order.
    phases: Vec<PhaseSpan>,
    /// Runtime-defined counters, split by merge rule: `custom_add`
    /// entries are summed across shards, `custom_peak` entries are
    /// max-merged.
    custom_add: BTreeMap<&'static str, u64>,
    custom_peak: BTreeMap<&'static str, u64>,
    /// Completion time of the latest-finishing executed event.
    last_completion: u64,
    /// Per-handler (execution count, last tick) for diagnostics.
    handler_stats: Vec<(u64, u64)>,
    /// Monotone order stamp for cross-shard entries produced here.
    sent_seq: u64,
    /// Cross-shard entries buffered during a window, per destination
    /// shard; flushed into the mailboxes at the window boundary.
    outbuf: Vec<Vec<XEntry>>,
    /// Recycled `Outgoing` buffer for [`EventCtx`] (capacity persists
    /// across events; one less allocation per sending event).
    out_scratch: Vec<Outgoing>,
    /// Recycled mailbox-drain buffer ([`XEntry`] capacity persists across
    /// windows, swapped with the mailbox's storage each round).
    xentry_scratch: Vec<XEntry>,
}

impl EngineCore {
    fn schedule(&mut self, time: u64, action: Action) {
        let slot = self.arena.insert(action);
        self.calendar.push(time, slot);
        // `peak_calendar` counts logical pending entries (see `stats.rs`):
        // `CalendarQueue::len` spans ring, fast lane, and overflow rung,
        // matching the historical heap's `len()` exactly.
        self.stats.peak_calendar = self.stats.peak_calendar.max(self.calendar.len());
    }

    /// Time of the earliest pending calendar entry, `u64::MAX` when empty.
    fn next_time(&self) -> u64 {
        self.calendar.peek_time().unwrap_or(u64::MAX)
    }

    fn local_lane(&mut self, nwid: NetworkId) -> &mut Lane {
        let idx = (nwid.0 - self.base_lane) as usize;
        assert!(
            nwid.0 >= self.base_lane && idx < self.lanes.len(),
            "message to nonexistent lane {} (shard {} owns {}..{})",
            nwid.0,
            self.id,
            self.base_lane,
            self.base_lane + self.lanes.len() as u32
        );
        &mut self.lanes[idx]
    }

    fn deliver(&mut self, t: u64, msg: Message) {
        let l = msg.dst.nwid();
        let lane = self.local_lane(l);
        lane.inbox.push_back(msg);
        if !lane.scheduled {
            lane.scheduled = true;
            let at = t.max(lane.free_at);
            self.schedule(at, Action::LaneRun(l.0));
        }
    }

    /// Buffer a cross-shard calendar entry for delivery at the next
    /// window boundary.
    fn push_cross(&mut self, dst: u32, time: u64, action: Action) {
        self.sent_seq += 1;
        self.outbuf[dst as usize].push(XEntry {
            time,
            src: self.id,
            order: self.sent_seq,
            action,
        });
    }

    /// Carry `action` from this node to remote `dst_node`: serialize the
    /// bytes at this node's NIC, advance the message hop-by-hop across the
    /// fabric (attributing per-link counters at each hop's traversal
    /// time), and buffer the cross-shard delivery at the arrival time.
    /// Returns `(depart, arrival)` for tracing.
    ///
    /// All fabric state touched here belongs to this (source) shard, and
    /// the arrival trails `depart` by at least [`Topology::min_transit`]
    /// = the scheduler lookahead, so the conservative-window invariant
    /// holds for every topology and results stay byte-identical across
    /// thread counts.
    fn fabric_send(
        &mut self,
        shared: &Shared,
        ready: u64,
        dst_node: u32,
        bytes: u64,
        action: Action,
    ) -> (u64, u64) {
        let depart = self.nic.inject(0, ready, bytes);
        let src_node = self.id;
        let route = shared.topo.route(src_node, dst_node);
        let hops = route.len();
        for (k, &l) in route.iter().enumerate() {
            let t = shared.topo.hop_time(depart, k, hops);
            let cumulative = self.fabric.record(l, t, bytes);
            if let Some(tr) = &mut self.tracer {
                let link = shared.topo.links()[l.0 as usize];
                tr.record(TraceEvent::Link {
                    src: link.src,
                    dst: link.dst,
                    node: src_node,
                    time: t,
                    value: cumulative,
                });
            }
        }
        let arrival = depart + shared.topo.latency(src_node, dst_node);
        self.push_cross(dst_node, arrival, action);
        (depart, arrival)
    }

    /// Latency for a lane->memory or memory->lane hop.
    fn mem_hop_latency(shared: &Shared, lane_node: u32, mem_node: u32) -> u64 {
        if lane_node == mem_node {
            shared.cfg.net.intra_node_latency
        } else {
            shared.cfg.net.inter_node_latency
        }
    }

    /// Issue a DRAM transaction at `t` from `src`: reserve the source NIC
    /// (remote targets) and route the channel-arrival stage to the owning
    /// shard.
    fn dram_issue(
        &mut self,
        shared: &Shared,
        t: u64,
        src: NetworkId,
        va: VAddr,
        op: MemOp,
        race: Option<RaceAccess>,
    ) {
        let owner = match shared.mem.owner_node(va) {
            Ok(n) => n,
            Err(e) => panic!("DRAM access fault from lane {}: {e} ({va:?})", src.0),
        };
        let src_node = shared.cfg.node_of(src);
        let trace_id = match &mut self.tracer {
            Some(tr) => tr.alloc_id(),
            None => 0,
        };
        if owner != src_node {
            self.stats.dram_remote_accesses += 1;
            // Request messages are one 72-byte unit regardless of payload.
            self.fabric_send(
                shared,
                t,
                owner,
                72,
                Action::MemArrive {
                    op,
                    src_node,
                    owner,
                    trace_id,
                    race,
                },
            );
        } else {
            let arrival = t + Self::mem_hop_latency(shared, src_node, owner);
            self.schedule(
                arrival,
                Action::MemArrive {
                    op,
                    src_node,
                    owner,
                    trace_id,
                    race,
                },
            );
        }
    }

    fn trace_line(&mut self, line: String) {
        if let Some(t) = &mut self.trace {
            t.push(line);
        }
    }

    fn phase_begin(&mut self, name: &str) {
        let now = self.now;
        self.phases.push(PhaseSpan {
            name: name.to_string(),
            start: now,
            end: u64::MAX,
        });
    }

    /// Close the most recent open span with this name; ignored when no
    /// such span exists (so instrumentation is safe on partial runs).
    fn phase_end(&mut self, name: &str) {
        let now = self.now;
        if let Some(p) = self
            .phases
            .iter_mut()
            .rev()
            .find(|p| p.is_open() && p.name == name)
        {
            p.end = now;
        }
    }

    /// Execute calendar entries strictly below `horizon`, up to `budget`
    /// events. Returns the number of events executed in this window.
    fn window(&mut self, shared: &Shared, horizon: u64, budget: u64) -> u64 {
        let before = self.stats.events_executed;
        while !self.stop && self.stats.events_executed - before < budget {
            let Some((t, slot)) = self.calendar.pop_if_before(horizon) else {
                break;
            };
            if t < self.now {
                panic!(
                    "time went backwards on shard {}: popped t={} behind clock t={}",
                    self.id, t, self.now
                );
            }
            self.now = t;
            let action = self.arena.take(slot);
            self.dispatch(shared, action);
        }
        self.stats.events_executed - before
    }

    fn dispatch(&mut self, shared: &Shared, action: Action) {
        match action {
            Action::Deliver(msg) => {
                let t = self.now;
                self.stats.msgs_delivered += 1;
                self.deliver(t, msg);
            }
            Action::LaneRun(l) => self.lane_run(shared, l),
            Action::MemArrive {
                op,
                src_node,
                owner,
                trace_id,
                race,
            } => {
                let now = self.now;
                let bytes = op.bytes();
                if let Some(tr) = &mut self.tracer {
                    tr.record(TraceEvent::Dram {
                        id: trace_id,
                        stage: DramStage::Arrive,
                        node: owner,
                        time: now,
                        bytes,
                        write: op.is_write(),
                    });
                }
                let served = self.channel.service(0, now, bytes);
                self.schedule(
                    served,
                    Action::MemServed {
                        op,
                        src_node,
                        owner,
                        trace_id,
                        race,
                    },
                );
            }
            Action::MemServed {
                op,
                src_node,
                owner,
                trace_id,
                race,
            } => {
                let now = self.now;
                let bytes = op.bytes();
                let write = op.is_write();
                if let Some(tr) = &mut self.tracer {
                    tr.record(TraceEvent::Dram {
                        id: trace_id,
                        stage: DramStage::Served,
                        node: owner,
                        time: now,
                        bytes,
                        write,
                    });
                }
                // Record the access for race detection here: channel
                // service order on the owning shard is the deterministic
                // serialization point for this word's state. Atomic ops
                // hand back an acquired clock for the reply to carry.
                let mut race_acquired = None;
                if let (Some(rp), Some(acc)) = (&shared.cfg.race, &race) {
                    let (va, nwords, atomic, is_wr) = match &op {
                        MemOp::Read { va, nwords, .. } => (*va, *nwords as u32, false, false),
                        MemOp::Write { va, words, .. } => (*va, words.len() as u32, false, true),
                        MemOp::AddU64 { va, .. } | MemOp::AddF64 { va, .. } => (*va, 1, true, true),
                    };
                    let base = shared.mem.descriptor(va).map(|d| d.base.0).unwrap_or(va.0);
                    race_acquired = rp.record_dram(acc, va, base, nwords, atomic, is_wr, now);
                }
                // Apply the memory effect now, on the owning shard: channel
                // service order is the deterministic serialization point
                // for all accesses to this node's memory.
                let mut reply = match op {
                    MemOp::Read {
                        va,
                        nwords,
                        ret,
                        tag,
                    } => {
                        let mut words = match shared.mem.read_words(va, nwords as usize) {
                            Ok(w) => w,
                            Err(e) => panic!("DRAM read fault at service time: {e}"),
                        };
                        if let Some(tag) = tag {
                            words.push(tag);
                        }
                        Some(Message::new(ret, words, EventWord::IGNORE, ret.nwid()))
                    }
                    MemOp::Write {
                        va,
                        words,
                        ack,
                        tag,
                    } => {
                        shared
                            .mem
                            .write_words(va, &words)
                            .unwrap_or_else(|e| panic!("DRAM write fault at service time: {e}"));
                        ack.map(|ack| {
                            let mut args = vec![va.0];
                            if let Some(tag) = tag {
                                args.push(tag);
                            }
                            Message::new(ack, args, EventWord::IGNORE, ack.nwid())
                        })
                    }
                    MemOp::AddU64 {
                        va,
                        delta,
                        ret,
                        tag,
                    } => {
                        let old = shared
                            .mem
                            .fetch_add_u64(va, delta)
                            .unwrap_or_else(|e| panic!("DRAM atomic fault: {e}"));
                        ret.map(|ret| {
                            let mut args = vec![old];
                            if let Some(tag) = tag {
                                args.push(tag);
                            }
                            Message::new(ret, args, EventWord::IGNORE, ret.nwid())
                        })
                    }
                    MemOp::AddF64 {
                        va,
                        delta,
                        ret,
                        tag,
                    } => {
                        let old = shared
                            .mem
                            .fetch_add_f64(va, delta)
                            .unwrap_or_else(|e| panic!("DRAM atomic fault: {e}"));
                        ret.map(|ret| {
                            let mut args = vec![old.to_bits()];
                            if let Some(tag) = tag {
                                args.push(tag);
                            }
                            Message::new(ret, args, EventWord::IGNORE, ret.nwid())
                        })
                    }
                };
                // The reply carries the issuer's clock so replies order
                // with the issue (write -> ack -> send -> read chains);
                // an atomic's reply carries the acquired clock instead,
                // ordering the issuer after every earlier fetch-and-add
                // on the word (barrier release-acquire).
                if let (Some(acc), Some(m)) = (&race, reply.as_mut()) {
                    m.race = Some(race_acquired.take().unwrap_or_else(|| acc.clock.clone()));
                }
                let resp = MemResp {
                    reply,
                    bytes,
                    write,
                };
                if owner != src_node {
                    self.fabric_send(
                        shared,
                        now,
                        src_node,
                        8 + bytes,
                        Action::MemDone {
                            resp,
                            owner,
                            trace_id,
                        },
                    );
                } else {
                    let arrival = now + Self::mem_hop_latency(shared, src_node, owner);
                    self.schedule(
                        arrival,
                        Action::MemDone {
                            resp,
                            owner,
                            trace_id,
                        },
                    );
                }
            }
            Action::MemDone {
                resp,
                owner,
                trace_id,
            } => {
                let t = self.now;
                if let Some(tr) = &mut self.tracer {
                    tr.record(TraceEvent::Dram {
                        id: trace_id,
                        stage: DramStage::Respond,
                        node: owner,
                        time: t,
                        bytes: resp.bytes,
                        write: resp.write,
                    });
                }
                if let Some(msg) = resp.reply {
                    self.deliver(t, msg);
                }
            }
        }
    }

    fn lane_run(&mut self, shared: &Shared, l: u32) {
        let t = self.now;
        let max_threads = shared.cfg.max_threads_per_lane;
        let li = (l - self.base_lane) as usize;
        let lane = &mut self.lanes[li];
        debug_assert!(lane.scheduled);
        let Some(msg) = lane.inbox.pop_front() else {
            lane.scheduled = false;
            return;
        };
        let label = msg.dst.label();
        let is_new = msg.dst.tid() == ThreadId::NEW;
        // Sanitizer: messages that cannot be dispatched (unregistered label
        // or dead target thread) are diagnosed and dropped instead of
        // panicking. Violation-free programs never reach either branch.
        if shared.cfg.sanitize {
            let unregistered = label.0 as usize >= shared.handlers.len();
            let dead = !unregistered && !is_new && !lane.threads.contains(msg.dst.tid());
            if unregistered || dead {
                let more = !lane.inbox.is_empty();
                if !more {
                    lane.scheduled = false;
                }
                if let Some(p) = &shared.cfg.probe {
                    if unregistered {
                        p.diag(DiagKind::SendUnregistered, label.0, label.0 as u64, t, l, || {
                            format!("message delivered to unregistered event label {}", label.0)
                        });
                    } else {
                        let tid = msg.dst.tid().0;
                        p.diag(DiagKind::SendToDeadThread, label.0, tid as u64, t, l, || {
                            format!(
                                "message for '{}' targets dead thread {tid} on lane {l}",
                                shared.handlers[label.0 as usize].name
                            )
                        });
                    }
                }
                self.stats.msgs_dropped += 1;
                if more {
                    self.schedule(t, Action::LaneRun(l));
                }
                return;
            }
        }
        // Resolve the thread context.
        let tid = match lane.resolve_thread(msg.dst, max_threads) {
            Some(tid) => tid,
            None => {
                // Thread table full: park this message and try the next.
                lane.parked.push_back(msg);
                let more = !lane.inbox.is_empty();
                if !more {
                    lane.scheduled = false;
                }
                self.stats.thread_table_stalls += 1;
                if more {
                    self.schedule(t, Action::LaneRun(l));
                }
                return;
            }
        };
        if is_new {
            self.stats.threads_created += 1;
            lane.threads.set_created_by(tid, label.0);
            if let Some(p) = &shared.cfg.probe {
                p.spawn(label.0);
            }
        }
        let created_by = lane.threads.created_by(tid);
        // Race detection: join the message's clock into the thread, bump
        // its epoch, and snapshot once for every effect of this execution.
        let race_exec = shared.cfg.race.as_ref().map(|rp| {
            let key = ThreadKey {
                lane: l,
                tid: tid.0,
                gen: lane.threads.generation(tid),
            };
            rp.begin_event(key, msg.race.as_ref())
        });
        let state = lane
            .threads
            .state_mut(tid)
            .unwrap_or_else(|| panic!("event {:?} targets dead thread on lane {l}", msg.dst))
            .take();
        let entry = &shared.handlers[label.0 as usize];
        let hs = &mut self.handler_stats[label.0 as usize];
        hs.0 += 1;
        hs.1 = t;
        let f = Arc::clone(&entry.f);

        let base = shared.cfg.costs.event_dispatch
            + if is_new {
                shared.cfg.costs.thread_create
            } else {
                0
            };
        let out_buf = std::mem::take(&mut self.out_scratch);
        let mut ctx = EventCtx {
            shard: self,
            shared,
            lane: l,
            tid,
            event_name: &entry.name,
            msg: &msg,
            cost: base,
            out: out_buf,
            terminated: false,
            state,
            stopped: false,
            created_by,
            cont_read: Cell::new(false),
            race: race_exec,
        };
        f(&mut ctx);

        let EventCtx {
            cost,
            mut out,
            terminated,
            state,
            stopped,
            cont_read,
            race: race_exec,
            ..
        } = ctx;

        if let Some(p) = &shared.cfg.probe {
            p.exec(
                label.0,
                created_by,
                msg.args.len() as u32,
                !msg.cont.is_ignore(),
                cont_read.get(),
                terminated,
            );
            // A continuation is carried per message: once the receiving
            // execution terminates the thread without reading it, nothing
            // can ever resume it.
            if terminated && !msg.cont.is_ignore() && !cont_read.get() {
                p.diag(DiagKind::UnconsumedContinuation, label.0, 0, t, l, || {
                    format!(
                        "'{}' terminated its thread without reading the continuation \
                         carried by the triggering message",
                        entry.name
                    )
                });
            }
        }

        // Every event ends in yield or yield_terminate (§2.1.1).
        let end_cost = if terminated {
            shared.cfg.costs.thread_dealloc
        } else {
            shared.cfg.costs.yield_
        };
        let total = cost + end_cost;
        let t_end = t + total;

        let lane = &mut self.lanes[li];
        lane.busy += total;
        lane.events += 1;
        lane.free_at = t_end;
        self.stats.events_executed += 1;
        self.last_completion = self.last_completion.max(t_end);
        if let Some(tr) = &mut self.tracer {
            tr.record(TraceEvent::Exec {
                lane: l,
                label: label.0,
                tid: tid.0,
                start: t,
                end: t_end,
            });
        }

        if terminated {
            let lane = &mut self.lanes[li];
            lane.dealloc_thread(tid);
            // A freed context unparks one waiting creation.
            if let Some(parked) = lane.parked.pop_front() {
                lane.inbox.push_front(parked);
            }
            self.stats.threads_terminated += 1;
            if let (Some(rp), Some(r)) = (&shared.cfg.race, &race_exec) {
                rp.end_thread(r.key);
            }
        } else {
            *self.lanes[li]
                .threads
                .state_mut(tid)
                .expect("live thread") = state;
        }

        // Emit collected effects at completion time.
        let src = NetworkId(l);
        let src_node = self.id;
        for o in out.drain(..) {
            match o {
                Outgoing::Msg(msg, delay) => {
                    let ready = t_end + delay;
                    let dst = msg.dst.nwid();
                    assert!(
                        dst.0 < shared.cfg.total_lanes(),
                        "message to nonexistent lane {} (machine has {})",
                        dst.0,
                        shared.cfg.total_lanes()
                    );
                    let bytes = msg.wire_bytes(shared.cfg.net.msg_header_bytes);
                    let dst_node = shared.cfg.node_of(dst);
                    let label = msg.dst.label().0;
                    let (depart, arrival) = if dst_node != src_node {
                        self.stats.msgs_inter_node += 1;
                        self.fabric_send(shared, ready, dst_node, bytes, Action::Deliver(msg))
                    } else {
                        if shared.cfg.accel_of(src) == shared.cfg.accel_of(dst) {
                            self.stats.msgs_intra_accel += 1;
                        } else {
                            self.stats.msgs_intra_node += 1;
                        }
                        let arrival = ready + shared.cfg.local_msg_latency(src, dst);
                        self.schedule(arrival, Action::Deliver(msg));
                        (ready, arrival)
                    };
                    if let Some(tr) = &mut self.tracer {
                        let id = tr.alloc_id();
                        tr.record(TraceEvent::MsgTransit {
                            id,
                            src: l,
                            dst: dst.0,
                            label,
                            depart,
                            arrive: arrival,
                        });
                    }
                }
                Outgoing::DramRead {
                    va,
                    nwords,
                    ret,
                    tag,
                    race,
                } => {
                    self.stats.dram_reads += 1;
                    self.stats.dram_read_bytes += nwords as u64 * 8;
                    self.dram_issue(
                        shared,
                        t_end,
                        src,
                        va,
                        MemOp::Read {
                            va,
                            nwords,
                            ret,
                            tag,
                        },
                        race,
                    );
                }
                Outgoing::DramWrite {
                    va,
                    words,
                    ack,
                    tag,
                    race,
                } => {
                    self.stats.dram_writes += 1;
                    self.stats.dram_write_bytes += words.len() as u64 * 8;
                    self.dram_issue(
                        shared,
                        t_end,
                        src,
                        va,
                        MemOp::Write {
                            va,
                            words,
                            ack,
                            tag,
                        },
                        race,
                    );
                }
                Outgoing::AtomicAddU64 {
                    va,
                    delta,
                    ret,
                    tag,
                    race,
                } => {
                    self.stats.dram_writes += 1;
                    self.stats.dram_write_bytes += 8;
                    self.dram_issue(shared, t_end, src, va, MemOp::AddU64 { va, delta, ret, tag }, race);
                }
                Outgoing::AtomicAddF64 {
                    va,
                    delta,
                    ret,
                    tag,
                    race,
                } => {
                    self.stats.dram_writes += 1;
                    self.stats.dram_write_bytes += 8;
                    self.dram_issue(shared, t_end, src, va, MemOp::AddF64 { va, delta, ret, tag }, race);
                }
            }
        }

        self.out_scratch = out;

        if stopped {
            self.stop = true;
        }

        let lane = &mut self.lanes[li];
        if lane.inbox.is_empty() {
            lane.scheduled = false;
        } else {
            self.schedule(t_end, Action::LaneRun(l));
        }
    }

    /// Move all entries out of `mb` into this shard's calendar, in
    /// deterministic `(source shard, source order)` order.
    fn drain_mailbox(&mut self, mb: &Mailbox) {
        // Swap the mailbox's storage with the recycled drain buffer so
        // both vectors keep their capacity across windows.
        let mut entries = std::mem::take(&mut self.xentry_scratch);
        debug_assert!(entries.is_empty());
        std::mem::swap(&mut *mb.q.lock().unwrap(), &mut entries);
        mb.min.store(u64::MAX, Relaxed);
        if !entries.is_empty() {
            entries.sort_unstable_by_key(|e| (e.src, e.order));
            for e in entries.drain(..) {
                self.schedule(e.time, e.action);
            }
        }
        self.xentry_scratch = entries;
    }

    /// Publish this window's buffered cross-shard entries into the
    /// destination mailboxes (parity `par`).
    fn flush_outbuf(&mut self, mailboxes: &[[Mailbox; 2]], par: usize) {
        for (dst, buf) in self.outbuf.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let mb = &mailboxes[dst][par];
            let mut min = u64::MAX;
            for e in buf.iter() {
                min = min.min(e.time);
            }
            mb.min.fetch_min(min, Relaxed);
            mb.q.lock().unwrap().append(buf);
        }
    }
}

/// A per-(destination, parity) queue of cross-shard calendar entries.
/// Double-buffered by round parity: pushes in round `r` go to parity
/// `r % 2` and are drained at the start of round `r + 1` — a fast worker
/// can never consume entries from the round still in progress.
struct Mailbox {
    q: Mutex<Vec<XEntry>>,
    /// Earliest entry time in `q` (for the coordinator's floor), reset to
    /// `u64::MAX` on drain.
    min: AtomicU64,
}

impl Default for Mailbox {
    fn default() -> Mailbox {
        Mailbox {
            q: Mutex::new(Vec::new()),
            min: AtomicU64::new(u64::MAX),
        }
    }
}

/// Shared control block for one scheduler invocation.
struct Ctl {
    barrier: Barrier,
    /// Upper bound (exclusive) of the current window; `u64::MAX` signals
    /// completion.
    horizon: AtomicU64,
    /// Per-shard earliest pending calendar time, published at window end.
    next_time: Vec<AtomicU64>,
    /// Per-destination double-buffered cross-shard queues.
    mailboxes: Vec<[Mailbox; 2]>,
    stop: AtomicBool,
    /// Cumulative executed events (seeded with the pre-run total so the
    /// event limit is cumulative across runs, like the serial engine).
    events: AtomicU64,
    rounds: AtomicU64,
    event_limit: u64,
    lookahead: u64,
}

/// One scheduler worker: processes `chunk` of the shards through the
/// window-barrier rounds. The coordinator (worker 0) additionally computes
/// each round's horizon between the two barrier waits.
fn worker_loop(chunk: &mut [EngineCore], is_coord: bool, ctl: &Ctl, shared: &Shared) {
    let mut round: u64 = 0;
    loop {
        ctl.barrier.wait();
        if is_coord {
            let drain_par = ((round + 1) % 2) as usize;
            let mut floor = u64::MAX;
            for t in &ctl.next_time {
                floor = floor.min(t.load(Relaxed));
            }
            for mb in &ctl.mailboxes {
                floor = floor.min(mb[drain_par].min.load(Relaxed));
            }
            let done = floor == u64::MAX
                || ctl.stop.load(Relaxed)
                || ctl.events.load(Relaxed) >= ctl.event_limit;
            if done {
                ctl.horizon.store(u64::MAX, Relaxed);
            } else {
                ctl.rounds.fetch_add(1, Relaxed);
                let h = floor.saturating_add(ctl.lookahead).min(u64::MAX - 1);
                ctl.horizon.store(h, Relaxed);
            }
        }
        ctl.barrier.wait();
        let horizon = ctl.horizon.load(Relaxed);
        if horizon == u64::MAX {
            break;
        }
        let drain_par = ((round + 1) % 2) as usize;
        let push_par = (round % 2) as usize;
        // Same snapshot on every worker => the per-window budget is
        // thread-count invariant.
        let budget_base = ctl.events.load(Relaxed);
        let budget = ctl.event_limit.saturating_sub(budget_base);
        for core in chunk.iter_mut() {
            core.drain_mailbox(&ctl.mailboxes[core.id as usize][drain_par]);
            let executed = core.window(shared, horizon, budget);
            if executed > 0 {
                ctl.events.fetch_add(executed, Relaxed);
            }
            core.flush_outbuf(&ctl.mailboxes, push_par);
            ctl.next_time[core.id as usize].store(core.next_time(), Relaxed);
            if core.stop {
                ctl.stop.store(true, Relaxed);
            }
        }
        round += 1;
    }
}

/// One scheduler invocation over the engine's shards. Constructed by
/// [`Engine::run_with`] and consumed by a [`Scheduler`] implementation.
pub struct EngineRun<'a> {
    pub(crate) shards: &'a mut [EngineCore],
    pub(crate) shared: &'a Shared,
    pub(crate) event_limit: u64,
    pub(crate) events_before: u64,
    pub(crate) rounds: u64,
    pub(crate) stopped: bool,
}

/// Execute the conservative window rounds with `workers` OS threads.
/// `workers == 1` runs the identical loop inline — the sequential engine
/// *is* the parallel engine with one worker, so results agree by
/// construction.
pub(crate) fn run_rounds(run: &mut EngineRun<'_>, workers: usize) {
    let n = run.shards.len();
    let workers = workers.min(n).max(1);
    let ctl = Ctl {
        barrier: Barrier::new(workers),
        horizon: AtomicU64::new(0),
        next_time: run
            .shards
            .iter()
            .map(|s| AtomicU64::new(s.next_time()))
            .collect(),
        mailboxes: (0..n).map(|_| [Mailbox::default(), Mailbox::default()]).collect(),
        stop: AtomicBool::new(false),
        events: AtomicU64::new(run.events_before),
        rounds: AtomicU64::new(0),
        event_limit: run.event_limit,
        lookahead: run.shared.lookahead,
    };
    if workers == 1 {
        worker_loop(run.shards, true, &ctl, run.shared);
    } else {
        // Split into exactly `workers` non-empty chunks (sizes differ by at
        // most one) — the barrier counts every worker, so the chunk count
        // must match it exactly.
        let shared = run.shared;
        let base = n / workers;
        let extra = n % workers;
        let mut rest: &mut [EngineCore] = run.shards;
        let mut chunks: Vec<&mut [EngineCore]> = Vec::with_capacity(workers);
        for i in 0..workers {
            let take = base + usize::from(i < extra);
            let (head, tail) = rest.split_at_mut(take);
            chunks.push(head);
            rest = tail;
        }
        let mut iter = chunks.into_iter();
        let first = iter.next().expect("at least one worker");
        std::thread::scope(|s| {
            for ch in iter {
                let ctl = &ctl;
                s.spawn(move || worker_loop(ch, false, ctl, shared));
            }
            worker_loop(first, true, &ctl, shared);
        });
    }
    // Entries still parked in the mailboxes (stop or event-limit endings)
    // go back into the destination calendars so a later `run()` resumes
    // them; drain order is deterministic (parity, then (src, order)).
    let rounds = ctl.rounds.load(Relaxed);
    for core in run.shards.iter_mut() {
        let mb = &ctl.mailboxes[core.id as usize];
        for par in [(rounds % 2) as usize, ((rounds + 1) % 2) as usize] {
            core.drain_mailbox(&mb[par]);
        }
    }
    run.rounds = rounds;
    run.stopped = ctl.stop.load(Relaxed);
}

/// The simulator.
pub struct Engine {
    shared: Shared,
    shards: Vec<EngineCore>,
    event_limit: u64,
    /// Barrier rounds accumulated over all runs (reported as
    /// `Counters::windows`).
    windows: u64,
    /// Host-side phase spans (`Engine::phase_begin`), in begin order.
    host_phases: Vec<PhaseSpan>,
    /// Host + device phase spans, stable-sorted by start time.
    phases_cache: Vec<PhaseSpan>,
    /// Trace events drained from the shard tracers after each run, in
    /// shard order.
    merged_trace: Vec<TraceEvent>,
    /// `[PRINT]` lines drained from the shards after each run, in shard
    /// order.
    merged_print: Vec<String>,
    /// Counters merged across shards after each run (for `stats()`).
    merged_stats: Counters,
}

impl Engine {
    pub fn new(mut cfg: MachineConfig) -> Engine {
        // The sanitizer reports through a probe; create one when the caller
        // asked for sanitizing without supplying their own.
        if cfg.sanitize && cfg.probe.is_none() {
            cfg.probe = Some(ProtocolProbe::new());
        }
        let lanes_per_node = cfg.lanes_per_node();
        let mem = Arc::new(GlobalMemory::new(cfg.nodes));
        let n = cfg.nodes;
        let topo = cfg.net.topology.build(n, &cfg.net);
        debug_assert_eq!(topo.nodes(), n);
        let n_links = topo.links().len();
        let shards = (0..n)
            .map(|id| EngineCore {
                id,
                base_lane: id * lanes_per_node,
                now: 0,
                calendar: CalendarQueue::new(),
                arena: ActionArena::default(),
                lanes: {
                    let mut v = Vec::with_capacity(lanes_per_node as usize);
                    v.resize_with(lanes_per_node as usize, Lane::default);
                    v
                },
                channel: MemChannels::new(1, &cfg.mem),
                nic: Nics::new(1, &cfg.net),
                fabric: Fabric::new(n_links, cfg.net.link_stat_window),
                stats: Counters::default(),
                stop: false,
                trace: None,
                tracer: None,
                phases: Vec::new(),
                custom_add: BTreeMap::new(),
                custom_peak: BTreeMap::new(),
                last_completion: 0,
                handler_stats: Vec::new(),
                sent_seq: 0,
                outbuf: (0..n).map(|_| Vec::new()).collect(),
                out_scratch: Vec::new(),
                xentry_scratch: Vec::new(),
            })
            .collect();
        let lookahead = topo.min_transit().max(1);
        Engine {
            shared: Shared {
                cfg,
                mem,
                handlers: Vec::new(),
                topo,
                lookahead,
            },
            shards,
            event_limit: u64::MAX,
            windows: 0,
            host_phases: Vec::new(),
            phases_cache: Vec::new(),
            merged_trace: Vec::new(),
            merged_print: Vec::new(),
            merged_stats: Counters::default(),
        }
    }

    pub fn config(&self) -> &MachineConfig {
        &self.shared.cfg
    }

    /// The conservative window length used by the schedulers: the minimum
    /// latency of any cross-node effect ([`Topology::min_transit`]).
    pub fn lookahead(&self) -> u64 {
        self.shared.lookahead
    }

    /// The system-network topology this machine runs on — the routing
    /// authority for cross-node transit (per-pair routes, hop latency,
    /// link enumeration).
    pub fn topology(&self) -> &dyn Topology {
        &*self.shared.topo
    }

    /// Register an event handler; returns its label.
    pub fn register(&mut self, name: &str, f: Handler) -> EventLabel {
        assert!(
            self.shared.handlers.len() < u16::MAX as usize,
            "handler table full"
        );
        let label = EventLabel(self.shared.handlers.len() as u16);
        self.shared.handlers.push(HandlerEntry {
            name: name.to_string(),
            f,
        });
        label
    }

    /// Name of a registered event (for traces and diagnostics).
    pub fn event_name(&self, label: EventLabel) -> &str {
        &self.shared.handlers[label.0 as usize].name
    }

    /// Host-side (TOP core) injection of an initial event at the current
    /// simulation time.
    pub fn send(&mut self, dst: EventWord, args: impl Into<Vec<u64>>, cont: EventWord) {
        let l = dst.nwid();
        assert!(
            l.0 < self.shared.cfg.total_lanes(),
            "message to nonexistent lane {} (machine has {})",
            l.0,
            self.shared.cfg.total_lanes()
        );
        let mut msg = Message::new(dst, args, cont, NetworkId(0));
        // Host sends are ordered with each other and after every prior
        // completed run; the executions they spawn stay mutually unordered.
        msg.race = self.shared.cfg.race.as_ref().map(|rp| rp.host_send());
        let t = self.now();
        let node = self.shared.cfg.node_of(l);
        self.shards[node as usize].deliver(t, msg);
    }

    /// Functional access to global memory for host-side setup/inspection
    /// (the TOP core's mmap-style access; not charged simulation time).
    pub fn mem(&self) -> &GlobalMemory {
        &self.shared.mem
    }

    pub fn mem_mut(&mut self) -> &mut GlobalMemory {
        Arc::get_mut(&mut self.shared.mem)
            .expect("exclusive memory access outside a run")
    }

    /// Cap the number of executed events (runaway guard). The run stops
    /// with [`Metrics`] when exceeded.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// The attached protocol probe, if any ([`MachineConfig::probe`], or
    /// auto-created by [`MachineConfig::sanitize`]).
    pub fn probe(&self) -> Option<&ProtocolProbe> {
        self.shared.cfg.probe.as_ref()
    }

    /// Diagnostics collected by the protocol probe / runtime sanitizer so
    /// far; empty when no probe is attached (and for violation-free runs).
    pub fn sanitizer_diagnostics(&self) -> Vec<Diagnostic> {
        self.shared
            .cfg
            .probe
            .as_ref()
            .map(|p| p.diagnostics())
            .unwrap_or_default()
    }

    /// Record `[PRINT]`-style trace lines emitted via [`EventCtx::print`].
    pub fn enable_trace(&mut self) {
        for s in &mut self.shards {
            if s.trace.is_none() {
                s.trace = Some(Vec::new());
            }
        }
    }

    pub fn trace(&self) -> &[String] {
        &self.merged_print
    }

    /// Enable the structured event trace (lane busy spans, message
    /// transits, DRAM stages, counters). Recording has **zero observer
    /// effect**: simulated cycle counts are byte-identical with tracing
    /// on or off. Export with [`Engine::chrome_trace_json`].
    pub fn enable_event_trace(&mut self) {
        for (i, s) in self.shards.iter_mut().enumerate() {
            if s.tracer.is_none() {
                s.tracer = Some(Tracer::with_id_base((i as u64) << 48));
            }
        }
    }

    pub fn event_trace_enabled(&self) -> bool {
        self.shards.first().map(|s| s.tracer.is_some()).unwrap_or(false)
    }

    /// Recorded trace events (empty when event tracing is disabled),
    /// merged in shard order after each run.
    pub fn event_trace(&self) -> &[TraceEvent] {
        &self.merged_trace
    }

    /// Begin a named phase span at the current simulation time (host
    /// side; device code uses [`EventCtx::phase_begin`]).
    pub fn phase_begin(&mut self, name: &str) {
        let now = self.now();
        self.host_phases.push(PhaseSpan {
            name: name.to_string(),
            start: now,
            end: u64::MAX,
        });
        self.rebuild_phases();
    }

    /// End the open span with this name that started most recently,
    /// searching host-side and device-side spans.
    pub fn phase_end(&mut self, name: &str) {
        let now = self.now();
        let mut best: Option<(&mut PhaseSpan, u64)> = None;
        for p in self
            .host_phases
            .iter_mut()
            .chain(self.shards.iter_mut().flat_map(|s| s.phases.iter_mut()))
        {
            if p.is_open() && p.name == name {
                let start = p.start;
                if best.as_ref().map(|(_, s)| start >= *s).unwrap_or(true) {
                    best = Some((p, start));
                }
            }
        }
        if let Some((p, _)) = best {
            p.end = now;
        }
        self.rebuild_phases();
    }

    /// Phase spans recorded so far (open spans have `end == u64::MAX`),
    /// host and device combined, stable-sorted by start time.
    pub fn phases(&self) -> &[PhaseSpan] {
        &self.phases_cache
    }

    fn rebuild_phases(&mut self) {
        let mut all: Vec<PhaseSpan> = self.host_phases.clone();
        for s in &self.shards {
            all.extend(s.phases.iter().cloned());
        }
        all.sort_by_key(|p| p.start);
        self.phases_cache = all;
    }

    /// Export the event trace in Chrome `trace_event` JSON format (open
    /// in `chrome://tracing` or Perfetto). Includes phase spans even when
    /// event tracing is disabled.
    pub fn chrome_trace_json(&self) -> String {
        let names: Vec<String> = self
            .shared
            .handlers
            .iter()
            .map(|h| h.name.clone())
            .collect();
        crate::trace::chrome_trace_json(
            &self.merged_trace,
            &self.phases_cache,
            &names,
            self.shared.cfg.lanes_per_node(),
            self.shared.cfg.clock_ghz,
            self.final_tick(),
        )
    }

    /// Write the Chrome trace JSON to `path`.
    pub fn write_chrome_trace(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    /// Machine-wide counters, merged across shards after each run.
    pub fn stats(&self) -> &Counters {
        &self.merged_stats
    }

    fn merged_counters(&self) -> Counters {
        let mut c = Counters::default();
        for s in &self.shards {
            c.merge_from(&s.stats);
        }
        c.windows = self.windows;
        c
    }

    /// Per-lane busy-cycle maximum and its lane id (diagnostics: detects
    /// serialization hot spots).
    pub fn busiest_lane(&self) -> (u32, u64) {
        let mut best = (0u32, 0u64);
        for s in &self.shards {
            for (i, l) in s.lanes.iter().enumerate() {
                if l.busy > best.1 {
                    best = (s.base_lane + i as u32, l.busy);
                }
            }
        }
        best
    }

    /// Lane with the most executed events (diagnostics).
    pub fn most_events_lane(&self) -> (u32, u64) {
        let mut best = (0u32, 0u64);
        for s in &self.shards {
            for (i, l) in s.lanes.iter().enumerate() {
                if l.events > best.1 {
                    best = (s.base_lane + i as u32, l.events);
                }
            }
        }
        best
    }

    /// Execution counts per event name, descending (diagnostics).
    pub fn event_counts(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = Vec::new();
        for (i, h) in self.shared.handlers.iter().enumerate() {
            let mut count = 0u64;
            let mut last = 0u64;
            for s in &self.shards {
                if let Some((c, t)) = s.handler_stats.get(i) {
                    count += c;
                    last = last.max(*t);
                }
            }
            if count > 0 {
                v.push((format!("{} (last @{})", h.name, last), count));
            }
        }
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    }

    /// Current simulation time: the maximum of the shard clocks.
    pub fn now(&self) -> u64 {
        self.shards.iter().map(|s| s.now).max().unwrap_or(0)
    }

    fn final_tick(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.now.max(s.last_completion))
            .max()
            .unwrap_or(0)
    }

    /// Run until the calendars drain, `stop()` is called, or the event
    /// limit is hit. A stopped engine can be run again: the stop flag is
    /// cleared on entry (pending calendar actions resume).
    ///
    /// Dispatches on [`MachineConfig::threads`]: `1` uses the
    /// [`Sequential`] scheduler, more uses [`Parallel`]. Results are
    /// byte-identical either way.
    pub fn run(&mut self) -> Metrics {
        if self.shared.cfg.threads > 1 {
            let threads = self.shared.cfg.threads as usize;
            self.run_with(&Parallel { threads })
        } else {
            self.run_with(&Sequential)
        }
    }

    /// Run under an explicit [`Scheduler`].
    pub fn run_with(&mut self, sched: &dyn Scheduler) -> Metrics {
        for s in &mut self.shards {
            s.stop = false;
            s.handler_stats.resize(self.shared.handlers.len(), (0, 0));
        }
        let events_before: u64 = self.shards.iter().map(|s| s.stats.events_executed).sum();
        let mut run = EngineRun {
            shards: &mut self.shards,
            shared: &self.shared,
            event_limit: self.event_limit,
            events_before,
            rounds: 0,
            stopped: false,
        };
        sched.run(&mut run);
        let (rounds, stopped) = (run.rounds, run.stopped);
        self.windows += rounds;
        if stopped {
            self.drain_in_flight();
        }
        self.collect_run_artifacts();
        // "Drained naturally" = every message was consumed: no
        // `ctx.stop()`, no event-limit cut-off. Only then is a live
        // thread a leak — a stopped run legitimately strands threads
        // (pollers, feeders), and a truncated run proves nothing.
        let total: u64 = self.shards.iter().map(|s| s.stats.events_executed).sum();
        let hit_limit = self.event_limit != u64::MAX && total >= self.event_limit;
        let drained = !stopped && !hit_limit;
        if let Some(p) = &self.shared.cfg.probe {
            if drained {
                for shard in &self.shards {
                    for lane in &shard.lanes {
                        for created_by in lane.threads.live_created_by() {
                            p.live_at_exit(created_by);
                        }
                    }
                }
            }
            let names = self.shared.handlers.iter().map(|h| h.name.clone()).collect();
            p.finish_run(names, drained, self.final_tick());
        }
        if let Some(rp) = &self.shared.cfg.race {
            let names = self.shared.handlers.iter().map(|h| h.name.clone()).collect();
            rp.finish_run(names, drained);
        }
        self.metrics()
    }

    /// Graceful stop: apply all in-flight memory effects so host-visible
    /// memory is consistent (message deliveries and lane work are
    /// discarded; acks/read-returns have no one left to run them).
    fn drain_in_flight(&mut self) {
        for core in &mut self.shards {
            while let Some((_t, slot)) = core.calendar.pop() {
                let op = match core.arena.take(slot) {
                    // Not-yet-applied stages carry the op; apply effects.
                    Action::MemArrive { op, .. } | Action::MemServed { op, .. } => op,
                    Action::Deliver(_) => {
                        core.stats.msgs_dropped += 1;
                        continue;
                    }
                    // MemDone responses were already applied at service
                    // time on the owning shard.
                    Action::LaneRun(_) | Action::MemDone { .. } => continue,
                };
                match op {
                    MemOp::Write { va, words, .. } => {
                        self.shared
                            .mem
                            .write_words(va, &words)
                            .unwrap_or_else(|e| panic!("DRAM write fault at drain: {e}"));
                    }
                    MemOp::AddU64 { va, delta, .. } => {
                        let _ = self.shared.mem.fetch_add_u64(va, delta);
                    }
                    MemOp::AddF64 { va, delta, .. } => {
                        let _ = self.shared.mem.fetch_add_f64(va, delta);
                    }
                    MemOp::Read { .. } => {}
                }
            }
        }
    }

    /// Merge per-shard run artifacts into the engine-level views: trace
    /// events, print lines (both drained in shard order), the counters
    /// cache, and the phase cache.
    fn collect_run_artifacts(&mut self) {
        for core in &mut self.shards {
            if let Some(t) = &mut core.trace {
                self.merged_print.append(t);
            }
            if let Some(tr) = &mut core.tracer {
                self.merged_trace.append(&mut tr.events);
            }
        }
        self.merged_stats = self.merged_counters();
        self.rebuild_phases();
    }

    /// Build the final [`Metrics`] without running: machine-wide counters
    /// plus per-node rollups, lane-utilization histograms, the top-K
    /// hottest lanes, and any recorded phase spans.
    pub fn metrics(&self) -> Metrics {
        let final_tick = self.final_tick();
        let lanes_per_node = self.shared.cfg.lanes_per_node().max(1) as usize;
        let n_nodes = self.shared.cfg.nodes as usize;

        let mut nodes: Vec<NodeMetrics> = (0..n_nodes)
            .map(|n| NodeMetrics {
                node: n as u32,
                lanes: lanes_per_node as u64,
                dram_served_bytes: self.shards[n].channel.served_bytes.first().copied().unwrap_or(0),
                nic_injected_bytes: self.shards[n].nic.injected_bytes.first().copied().unwrap_or(0),
                ..NodeMetrics::default()
            })
            .collect();

        let mut total_busy = 0u64;
        let mut active_lanes = 0u64;
        let mut hot: Vec<LaneMetrics> = Vec::new();
        for shard in &self.shards {
            let nm = &mut nodes[shard.id as usize];
            for (i, lane) in shard.lanes.iter().enumerate() {
                total_busy += lane.busy;
                nm.busy += lane.busy;
                nm.events += lane.events;
                nm.max_lane_busy = nm.max_lane_busy.max(lane.busy);
                if lane.events > 0 {
                    active_lanes += 1;
                    nm.active_lanes += 1;
                }
                let bucket = if final_tick == 0 {
                    0
                } else {
                    ((lane.busy as u128 * UTIL_HIST_BUCKETS as u128 / final_tick as u128) as usize)
                        .min(UTIL_HIST_BUCKETS - 1)
                };
                nm.lane_util_hist[bucket] += 1;
                if lane.busy > 0 {
                    hot.push(LaneMetrics {
                        lane: shard.base_lane + i as u32,
                        node: shard.id,
                        busy: lane.busy,
                        events: lane.events,
                    });
                }
            }
        }
        hot.sort_by(|a, b| b.busy.cmp(&a.busy).then(a.lane.cmp(&b.lane)));
        hot.truncate(HOT_LANES_TOP_K);

        let mut phases: Vec<PhaseSpan> = self.host_phases.clone();
        for s in &self.shards {
            phases.extend(s.phases.iter().cloned());
        }
        phases.sort_by_key(|p| p.start);
        for p in &mut phases {
            if p.is_open() {
                p.end = final_tick;
            }
        }

        let mut custom: BTreeMap<&'static str, u64> = BTreeMap::new();
        for s in &self.shards {
            for (k, v) in &s.custom_add {
                *custom.entry(k).or_insert(0) += v;
            }
        }
        for s in &self.shards {
            for (k, v) in &s.custom_peak {
                let e = custom.entry(k).or_insert(0);
                *e = (*e).max(*v);
            }
        }

        Metrics {
            final_tick,
            clock_ghz: self.shared.cfg.clock_ghz,
            stats: self.merged_counters(),
            total_busy,
            active_lanes,
            total_lanes: self.shared.cfg.total_lanes() as u64,
            nodes,
            hot_lanes: hot,
            phases,
            custom,
            fabric: self.fabric_metrics(),
        }
    }

    /// Roll the per-shard fabric counters up into [`FabricMetrics`]: sum
    /// the per-link byte/flit counters across shards, element-wise sum the
    /// per-link demand windows (a link's demand in a window is the total
    /// over every shard injecting into it) and take each link's peak.
    /// Every step is an ordered sum, so the result is byte-identical
    /// across thread counts.
    fn fabric_metrics(&self) -> FabricMetrics {
        let topo = &*self.shared.topo;
        let links = topo.links();
        let mut per_link: Vec<LinkMetrics> = Vec::new();
        let mut link_bytes_total = 0u64;
        let mut peak_window_bytes = 0u64;
        let mut window_sum: Vec<u64> = Vec::new();
        for (i, l) in links.iter().enumerate() {
            let id = LinkId(i as u32);
            let mut bytes = 0u64;
            let mut flits = 0u64;
            window_sum.clear();
            for s in &self.shards {
                bytes += s.fabric.bytes()[i];
                flits += s.fabric.flits()[i];
                let d = s.fabric.demand(id);
                if window_sum.len() < d.len() {
                    window_sum.resize(d.len(), 0);
                }
                for (w, v) in window_sum.iter_mut().zip(d) {
                    *w += v;
                }
            }
            if bytes == 0 {
                continue;
            }
            let peak = window_sum.iter().copied().max().unwrap_or(0);
            link_bytes_total += bytes;
            peak_window_bytes = peak_window_bytes.max(peak);
            per_link.push(LinkMetrics {
                src: l.src,
                dst: l.dst,
                bytes,
                flits,
                peak_window_bytes: peak,
            });
        }
        let links_used = per_link.len() as u64;
        per_link.sort_by(|a, b| {
            b.bytes
                .cmp(&a.bytes)
                .then(a.src.cmp(&b.src))
                .then(a.dst.cmp(&b.dst))
        });
        per_link.truncate(FABRIC_TOP_LINKS);
        FabricMetrics {
            topology: topo.kind().name().to_string(),
            hop_latency: topo.hop_latency(),
            diameter: topo.diameter(),
            stat_window: self.shared.cfg.net.link_stat_window.max(1),
            link_bytes_per_cycle: self.shared.cfg.net.link_bytes_per_cycle.max(1),
            links_total: links.len() as u64,
            links_used,
            link_bytes_total,
            nic_injected_bytes: self
                .shards
                .iter()
                .map(|s| s.nic.injected_bytes.first().copied().unwrap_or(0))
                .sum(),
            peak_window_bytes,
            top_links: per_link,
        }
    }

    /// Back-compat alias for [`Engine::metrics`].
    pub fn report(&self) -> Metrics {
        self.metrics()
    }

    /// Force every shard clock to `t` — test hook for the
    /// time-went-backwards invariant. Not part of the public API.
    #[doc(hidden)]
    pub fn force_clock_for_test(&mut self, t: u64) {
        for s in &mut self.shards {
            s.now = t;
        }
    }
}

/// Execution context handed to event handlers: the UDWeave "machine
/// interface". Every operation charges its Table-2 cost.
pub struct EventCtx<'a> {
    shard: &'a mut EngineCore,
    shared: &'a Shared,
    lane: u32,
    tid: ThreadId,
    event_name: &'a str,
    msg: &'a Message,
    cost: u64,
    out: Vec<Outgoing>,
    terminated: bool,
    state: Option<Box<dyn Any + Send>>,
    stopped: bool,
    /// Creating label of this thread (protocol-probe bookkeeping).
    created_by: u16,
    /// Whether this execution read `cont()`; a `Cell` because the reads go
    /// through `&self` accessors. Probe bookkeeping only.
    cont_read: Cell<bool>,
    /// Race-detection context of this execution (clock snapshot), present
    /// only when a [`RaceProbe`](crate::RaceProbe) is attached.
    race: Option<RaceExec>,
}

impl<'a> EventCtx<'a> {
    // ---- identity & introspection -------------------------------------

    /// This lane's network ID (`curNetworkID`).
    #[inline]
    pub fn nwid(&self) -> NetworkId {
        NetworkId(self.lane)
    }

    /// Node index of this lane.
    #[inline]
    pub fn node(&self) -> u32 {
        self.shared.cfg.node_of(self.nwid())
    }

    #[inline]
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// `CEVNT`: the event word naming the currently executing event.
    #[inline]
    pub fn cur_evw(&self) -> EventWord {
        EventWord::with_thread(self.nwid(), self.tid, self.msg.dst.label())
    }

    /// An event word for another event of *this* thread.
    #[inline]
    pub fn self_event(&self, label: EventLabel) -> EventWord {
        EventWord::with_thread(self.nwid(), self.tid, label)
    }

    /// `CCONT`: the continuation word carried by the triggering message.
    #[inline]
    pub fn cont(&self) -> EventWord {
        self.cont_read.set(true);
        self.msg.cont
    }

    #[inline]
    pub fn config(&self) -> &MachineConfig {
        &self.shared.cfg
    }

    /// Current simulation time (start of this event).
    #[inline]
    pub fn now(&self) -> u64 {
        self.shard.now
    }

    // ---- operands ------------------------------------------------------

    #[inline]
    pub fn args(&self) -> &[u64] {
        if let Some(p) = &self.shared.cfg.probe {
            let n = self.msg.args.len() as u32;
            if n > 0 {
                p.arg_read(self.msg.dst.label().0, n, n - 1);
            }
        }
        &self.msg.args
    }

    /// Operand `i` of the triggering message. Panics past the operand
    /// count — unless the sanitizer is on, which diagnoses and reads zero.
    #[inline]
    pub fn arg(&self, i: usize) -> u64 {
        if let Some(p) = &self.shared.cfg.probe {
            let label = self.msg.dst.label().0;
            let argc = self.msg.args.len();
            p.arg_read(label, argc as u32, i as u32);
            if i >= argc {
                p.diag(
                    DiagKind::OperandOutOfRange,
                    label,
                    i as u64,
                    self.shard.now,
                    self.lane,
                    || {
                        format!(
                            "'{}' reads operand {i} of a {argc}-operand message",
                            self.event_name
                        )
                    },
                );
                if self.shared.cfg.sanitize {
                    return 0;
                }
            }
        }
        self.msg.args[i]
    }

    /// Operand interpreted as f64 bits.
    #[inline]
    pub fn argf(&self, i: usize) -> f64 {
        f64::from_bits(self.arg(i))
    }

    // ---- thread state ----------------------------------------------------

    /// Typed access to the thread's persistent state, default-initialized
    /// on first use.
    pub fn state_mut<T: Default + Send + 'static>(&mut self) -> &mut T {
        if self.state.is_none() || self.state.as_ref().unwrap().downcast_ref::<T>().is_none() {
            self.state = Some(Box::<T>::default());
        }
        self.state.as_mut().unwrap().downcast_mut::<T>().unwrap()
    }

    /// Replace the thread state wholesale.
    pub fn set_state<T: Send + 'static>(&mut self, v: T) {
        self.state = Some(Box::new(v));
    }

    /// Typed immutable view, `None` if never set with this type.
    pub fn state_ref<T: 'static>(&self) -> Option<&T> {
        self.state.as_ref().and_then(|b| b.downcast_ref::<T>())
    }

    // ---- sends -----------------------------------------------------------

    /// `send_event(eventWord, data..., continuationWord)`.
    pub fn send_event(&mut self, dst: EventWord, args: impl Into<Vec<u64>>, cont: EventWord) {
        self.send_event_after(0, dst, args, cont);
    }

    /// Send a message that enters the network `delay` cycles after this
    /// event completes. Models software timers used for termination
    /// re-polls; the lane is *not* kept busy during the delay.
    pub fn send_event_after(
        &mut self,
        delay: u64,
        dst: EventWord,
        args: impl Into<Vec<u64>>,
        cont: EventWord,
    ) {
        assert!(!dst.is_ignore(), "send_event to IGNORE");
        self.cost += self.shared.cfg.costs.send_msg;
        let args = args.into();
        if let Some(p) = &self.shared.cfg.probe {
            let src = self.msg.dst.label().0;
            let dl = dst.label().0;
            p.send(
                src,
                dl,
                args.len() as u32,
                !cont.is_ignore(),
                dst.tid() == ThreadId::NEW,
            );
            if dl as usize >= self.shared.handlers.len() {
                p.diag(
                    DiagKind::SendUnregistered,
                    src,
                    dl as u64,
                    self.shard.now,
                    self.lane,
                    || {
                        format!(
                            "'{}' sends to unregistered event label {dl}",
                            self.event_name
                        )
                    },
                );
            }
        }
        self.out.push(Outgoing::Msg(
            Message {
                dst,
                args,
                cont,
                src: self.nwid(),
                race: self.race.as_ref().map(|r| r.clock.clone()),
            },
            delay,
        ));
    }

    /// Race context for an outgoing DRAM operation of this execution.
    fn race_access(&self, atomic: bool) -> Option<RaceAccess> {
        self.race.as_ref().map(|r| RaceAccess {
            key: r.key,
            clock: r.clock.clone(),
            label: self.msg.dst.label().0,
            atomic,
        })
    }

    /// Reply on the continuation if one was provided.
    pub fn send_reply(&mut self, args: impl Into<Vec<u64>>) {
        let c = self.cont();
        if !c.is_ignore() {
            self.send_event(c, args, EventWord::IGNORE);
        }
    }

    // ---- DRAM ------------------------------------------------------------

    /// Issue an asynchronous DRAM read of `nwords` (≤ 8) consecutive words;
    /// the response arrives at `ret_label` on *this* thread with the data
    /// words as operands.
    pub fn send_dram_read(&mut self, va: VAddr, nwords: usize, ret_label: EventLabel) {
        self.dram_read_impl(va, nwords, ret_label, None);
    }

    /// As [`Self::send_dram_read`], with `tag` appended after the data.
    pub fn send_dram_read_tagged(
        &mut self,
        va: VAddr,
        nwords: usize,
        ret_label: EventLabel,
        tag: u64,
    ) {
        self.dram_read_impl(va, nwords, ret_label, Some(tag));
    }

    fn dram_read_impl(
        &mut self,
        va: VAddr,
        nwords: usize,
        ret_label: EventLabel,
        tag: Option<u64>,
    ) {
        assert!((1..=8).contains(&nwords), "hardware reads 1..=8 words");
        self.cost += self.shared.cfg.costs.send_dram;
        let ret = self.self_event(ret_label);
        self.out.push(Outgoing::DramRead {
            va,
            nwords: nwords as u8,
            ret,
            tag,
            race: self.race_access(false),
        });
    }

    /// Asynchronous DRAM write; optional ack event on this thread.
    pub fn send_dram_write(&mut self, va: VAddr, words: &[u64], ack_label: Option<EventLabel>) {
        self.dram_write_impl(va, words, ack_label, None)
    }

    pub fn send_dram_write_tagged(
        &mut self,
        va: VAddr,
        words: &[u64],
        ack_label: EventLabel,
        tag: u64,
    ) {
        self.dram_write_impl(va, words, Some(ack_label), Some(tag))
    }

    fn dram_write_impl(
        &mut self,
        va: VAddr,
        words: &[u64],
        ack_label: Option<EventLabel>,
        tag: Option<u64>,
    ) {
        assert!(
            !words.is_empty() && words.len() <= 8,
            "hardware writes 1..=8 words"
        );
        self.cost += self.shared.cfg.costs.send_dram;
        let ack = ack_label.map(|l| self.self_event(l));
        self.out.push(Outgoing::DramWrite {
            va,
            words: words.to_vec(),
            ack,
            tag,
            race: self.race_access(false),
        });
    }

    /// Memory-side atomic add on a u64 cell. In hardware this is realized
    /// in software (combining cache); the engine also offers it directly for
    /// library code and oracles. Timed like a one-word write.
    pub fn dram_fetch_add_u64(
        &mut self,
        va: VAddr,
        delta: u64,
        ret_label: Option<EventLabel>,
        tag: Option<u64>,
    ) {
        self.cost += self.shared.cfg.costs.send_dram;
        let ret = ret_label.map(|l| self.self_event(l));
        self.out.push(Outgoing::AtomicAddU64 {
            va,
            delta,
            ret,
            tag,
            race: self.race_access(true),
        });
    }

    /// Memory-side atomic add on an f64 cell.
    pub fn dram_fetch_add_f64(
        &mut self,
        va: VAddr,
        delta: f64,
        ret_label: Option<EventLabel>,
        tag: Option<u64>,
    ) {
        self.cost += self.shared.cfg.costs.send_dram;
        let ret = ret_label.map(|l| self.self_event(l));
        self.out.push(Outgoing::AtomicAddF64 {
            va,
            delta,
            ret,
            tag,
            race: self.race_access(true),
        });
    }

    /// Zero-time functional peek at global memory. **Not** part of the
    /// machine model: intended for assertions, oracles and trace output
    /// only. Timed code must use `send_dram_read`.
    pub fn dram_peek_u64(&self, va: VAddr) -> u64 {
        self.shared.mem.read_u64(va).expect("peek fault")
    }

    // ---- scratchpad --------------------------------------------------------

    #[inline]
    fn local_lane_idx(&self) -> usize {
        (self.lane - self.shard.base_lane) as usize
    }

    /// Sanitizer diagnostic for a scratchpad access past `spm_words`.
    fn spm_oob_diag(&self, op: &str, off: u32) {
        if let Some(p) = &self.shared.cfg.probe {
            p.diag(
                DiagKind::ScratchpadOutOfBounds,
                self.msg.dst.label().0,
                off as u64,
                self.shard.now,
                self.lane,
                || {
                    format!(
                        "'{}': {op} at word {off} past scratchpad size {}",
                        self.event_name, self.shared.cfg.spm_words
                    )
                },
            );
        }
    }

    /// Record one in-bounds scratchpad access for race detection.
    /// Atomic-class accesses mutate the execution's clock (release-acquire
    /// on the word), so this needs `&mut self`.
    fn spm_race(&mut self, off: u32, atomic: bool, write: bool) {
        if let (Some(rp), Some(r)) = (&self.shared.cfg.race, &mut self.race) {
            rp.record_spm(
                r,
                self.msg.dst.label().0,
                self.lane,
                off,
                atomic,
                write,
                self.shard.now,
            );
        }
    }

    /// Declare that this execution participates in a lane-serialized
    /// protocol identified by `token`: it happens-after every earlier
    /// execution on this lane that called `race_order` with the same
    /// token, and before every later one. A no-op without the race
    /// probe. Use this where synchronization flows through host-side
    /// state the probe cannot see (e.g. the kvmsr reduce-completion
    /// poll, SHT owner-lane tables); see `docs/udrace.md` for the token
    /// conventions.
    pub fn race_order(&mut self, token: u64) {
        if let (Some(rp), Some(r)) = (&self.shared.cfg.race, &mut self.race) {
            rp.order_token(r, self.lane, token);
        }
    }

    /// Scratchpad load (1 cycle), word-addressed. Out-of-bounds panics —
    /// unless the sanitizer is on, which diagnoses and reads zero.
    pub fn spm_read(&mut self, off: u32) -> u64 {
        self.spm_read_class(off, false)
    }

    /// As [`Self::spm_read`], annotated atomic-class for race detection:
    /// the load side of a read-modify-write the lane serializes by design
    /// (e.g. the combining cache's fetch-and-add slots). Atomic-class
    /// accesses order instead of racing; see `docs/udrace.md`.
    pub fn spm_read_atomic(&mut self, off: u32) -> u64 {
        self.spm_read_class(off, true)
    }

    fn spm_read_class(&mut self, off: u32, atomic: bool) -> u64 {
        if self.shared.cfg.sanitize && off >= self.shared.cfg.spm_words {
            self.spm_oob_diag("spm_read", off);
            self.cost += self.shared.cfg.costs.spd_access;
            return 0;
        }
        assert!(off < self.shared.cfg.spm_words, "scratchpad overflow");
        self.cost += self.shared.cfg.costs.spd_access;
        self.spm_race(off, atomic, false);
        let idx = self.local_lane_idx();
        self.shard.lanes[idx].spm.read(off)
    }

    /// Scratchpad store (1 cycle), word-addressed. Out-of-bounds panics —
    /// unless the sanitizer is on, which diagnoses and drops the store.
    pub fn spm_write(&mut self, off: u32, v: u64) {
        self.spm_write_class(off, v, false)
    }

    /// As [`Self::spm_write`], annotated atomic-class for race detection:
    /// the store side of a lane-serialized read-modify-write. See
    /// [`Self::spm_read_atomic`].
    pub fn spm_write_atomic(&mut self, off: u32, v: u64) {
        self.spm_write_class(off, v, true)
    }

    fn spm_write_class(&mut self, off: u32, v: u64, atomic: bool) {
        if self.shared.cfg.sanitize && off >= self.shared.cfg.spm_words {
            self.spm_oob_diag("spm_write", off);
            self.cost += self.shared.cfg.costs.spd_access;
            return;
        }
        assert!(off < self.shared.cfg.spm_words, "scratchpad overflow");
        self.cost += self.shared.cfg.costs.spd_access;
        self.spm_race(off, atomic, true);
        let idx = self.local_lane_idx();
        self.shard.lanes[idx].spm.write(off, v);
    }

    /// Raw bump-allocate `words` of this lane's scratchpad (spMalloc's
    /// backing primitive). Panics when the scratchpad is exhausted —
    /// unless the sanitizer is on, which diagnoses and refuses the bump.
    pub fn spm_alloc(&mut self, words: u32) -> u32 {
        let idx = self.local_lane_idx();
        let base = self.shard.lanes[idx].spm_brk;
        if self.shared.cfg.sanitize && base + words > self.shared.cfg.spm_words {
            if let Some(p) = &self.shared.cfg.probe {
                let (lane, spm_words) = (self.lane, self.shared.cfg.spm_words);
                p.diag(
                    DiagKind::ScratchpadExhausted,
                    self.msg.dst.label().0,
                    words as u64,
                    self.shard.now,
                    lane,
                    || {
                        format!(
                            "'{}': spm_alloc({words}) exhausts the scratchpad on lane \
                             {lane} ({base} + {words} > {spm_words})",
                            self.event_name
                        )
                    },
                );
            }
            return base;
        }
        assert!(
            base + words <= self.shared.cfg.spm_words,
            "spMalloc: scratchpad exhausted on lane {} ({} + {} > {})",
            self.lane,
            base,
            words,
            self.shared.cfg.spm_words
        );
        self.shard.lanes[idx].spm_brk += words;
        if let Some(p) = &self.shared.cfg.probe {
            p.spm_alloc_rec(self.msg.dst.label().0, self.created_by, words);
        }
        base
    }

    // ---- control ------------------------------------------------------------

    /// Charge additional compute cycles (loop bodies, arithmetic).
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.cost += cycles;
    }

    /// End this event and deallocate the thread (`yield_terminate`).
    /// Calling it twice in one event is idempotent but almost certainly a
    /// bug; the protocol probe diagnoses it.
    pub fn yield_terminate(&mut self) {
        if self.terminated {
            if let Some(p) = &self.shared.cfg.probe {
                p.diag(
                    DiagKind::DoubleTerminate,
                    self.msg.dst.label().0,
                    self.tid.0 as u64,
                    self.shard.now,
                    self.lane,
                    || format!("'{}' called yield_terminate twice in one event", self.event_name),
                );
            }
        }
        self.terminated = true;
    }

    /// Stop the whole simulation after this event completes. Other shards
    /// finish the current conservative window (deterministically), then
    /// the scheduler halts and drains in-flight memory effects.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Whether `[PRINT]` tracing is enabled. Lets handlers skip building
    /// trace strings entirely when nobody is listening.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.shard.trace.is_some()
    }

    /// Emit a BASIM_PRINT-style trace line (if tracing is enabled).
    ///
    /// The `text` argument is formatted by the *caller*; when it is
    /// expensive to build, prefer [`EventCtx::print_with`] so disabled
    /// tracing does zero string work.
    pub fn print(&mut self, text: &str) {
        if self.shard.trace.is_some() {
            let line = format!(
                "[PRINT] {}: [NWID {}][TID {}][{}] {}",
                self.shard.now, self.lane, self.tid.0, self.event_name, text
            );
            self.shard.trace_line(line);
        }
    }

    /// Lazily formatted [`EventCtx::print`]: the closure runs only when
    /// tracing is enabled, so the disabled-tracing fast path is a single
    /// `Option` discriminant check — no formatting, no allocation.
    #[inline]
    pub fn print_with<F: FnOnce() -> String>(&mut self, f: F) {
        if self.shard.trace.is_some() {
            let text = f();
            self.print(&text);
        }
    }

    // ---- observability (all zero-cost: never charges cycles) ---------------

    /// Open a named phase span at the current tick (e.g. a KVMSR map
    /// phase). Spans nest and repeat freely; [`Metrics::phase_cycles`]
    /// accumulates same-named spans. Free — charges no cycles.
    pub fn phase_begin(&mut self, name: &str) {
        self.shard.phase_begin(name);
    }

    /// Close the most recent open phase span with this name. A close
    /// without a matching open is ignored. Free — charges no cycles.
    pub fn phase_end(&mut self, name: &str) {
        self.shard.phase_end(name);
    }

    /// Add `delta` to a named custom counter reported in
    /// [`Metrics::custom`]. Summed across shards. Free — charges no
    /// cycles.
    pub fn bump(&mut self, name: &'static str, delta: u64) {
        *self.shard.custom_add.entry(name).or_insert(0) += delta;
    }

    /// Raise a named custom high-water mark to at least `value`.
    /// Max-merged across shards. Free — charges no cycles.
    pub fn peak(&mut self, name: &'static str, value: u64) {
        let e = self.shard.custom_peak.entry(name).or_insert(0);
        *e = (*e).max(value);
    }

    /// Sample a running counter into the event trace (rendered as a
    /// Chrome-trace counter track). No-op unless event tracing is on;
    /// free — charges no cycles.
    pub fn trace_counter_add(&mut self, name: &'static str, delta: i64) {
        let now = self.shard.now;
        if let Some(tr) = &mut self.shard.tracer {
            tr.counter_add(name, delta, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use std::sync::{Arc, Mutex};

    fn tiny() -> MachineConfig {
        MachineConfig::small(2, 2, 4)
    }

    #[test]
    fn call_return_composition() {
        // Listing 2 of the paper: e1 -> e2 (new thread, next lane) -> e3 (back).
        let mut eng = Engine::new(tiny());
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::default();

        let l3 = {
            let log = log.clone();
            eng.register(
                "e3",
                Arc::new(move |ctx: &mut EventCtx| {
                    log.lock().unwrap().push("e3");
                    ctx.yield_terminate();
                }),
            )
        };
        let l2 = {
            let log = log.clone();
            eng.register(
                "e2",
                Arc::new(move |ctx: &mut EventCtx| {
                    log.lock().unwrap().push("e2");
                    assert_eq!(ctx.args(), &[0, 1]);
                    ctx.send_reply([]);
                    ctx.yield_terminate();
                }),
            )
        };
        let l1 = {
            let log = log.clone();
            eng.register(
                "e1",
                Arc::new(move |ctx: &mut EventCtx| {
                    log.lock().unwrap().push("e1");
                    let evw = EventWord::new(ctx.nwid().next(), l2);
                    let ct = ctx.self_event(l3);
                    ctx.send_event(evw, [0, 1], ct);
                }),
            )
        };

        eng.send(EventWord::new(NetworkId(0), l1), [], EventWord::IGNORE);
        let report = eng.run();
        assert_eq!(&*log.lock().unwrap(), &["e1", "e2", "e3"]);
        assert_eq!(report.stats.events_executed, 3);
        assert_eq!(report.stats.threads_created, 2);
        assert_eq!(report.stats.threads_terminated, 2);
    }

    #[test]
    fn cost_model_exact() {
        // One event: dispatch(2) + send_msg(2) + yield(1) = 5 cycles busy.
        let mut eng = Engine::new(tiny());
        let sink = eng.register("sink", Arc::new(|ctx: &mut EventCtx| ctx.yield_terminate()));
        let l1 = eng.register(
            "one_send",
            Arc::new(move |ctx: &mut EventCtx| {
                let w = EventWord::new(ctx.nwid().next(), sink);
                ctx.send_event(w, [], EventWord::IGNORE);
                ctx.yield_terminate();
            }),
        );
        eng.send(EventWord::new(NetworkId(0), l1), [], EventWord::IGNORE);
        let r = eng.run();
        // Event 1: starts t=0, cost = 2 (dispatch) + 2 (send) + 1 (dealloc) = 5.
        // Message departs t=5, intra-accel latency 4, arrives t=9.
        // Event 2: cost 2 + 1 = 3, finishes t=12.
        assert_eq!(r.final_tick, 12);
        assert_eq!(r.total_busy, 5 + 3);
    }

    #[test]
    fn inter_node_latency_applies() {
        let cfg = tiny();
        let lanes_per_node = cfg.lanes_per_node();
        let mut eng = Engine::new(cfg);
        let sink = eng.register("sink", Arc::new(|ctx: &mut EventCtx| ctx.yield_terminate()));
        let l1 = eng.register(
            "cross",
            Arc::new(move |ctx: &mut EventCtx| {
                let w = EventWord::new(NetworkId(lanes_per_node), sink); // node 1
                ctx.send_event(w, [], EventWord::IGNORE);
                ctx.yield_terminate();
            }),
        );
        eng.send(EventWord::new(NetworkId(0), l1), [], EventWord::IGNORE);
        let r = eng.run();
        // depart t=5 via NIC (72 bytes / 2048 per cycle -> 1 cycle) = 6,
        // + 1000 latency = arrives 1006, runs 3 cycles.
        assert_eq!(r.final_tick, 1009);
        assert_eq!(r.stats.msgs_inter_node, 1);
    }

    #[test]
    fn dram_read_roundtrip_with_latency() {
        let mut eng = Engine::new(tiny());
        eng.mem_mut().min_block = 64;
        let a = eng.mem_mut().alloc(4096, 0, 1, 4096).unwrap();
        eng.mem_mut().write_words(a, &[10, 20, 30]).unwrap();

        let got: Arc<Mutex<Vec<u64>>> = Arc::default();
        let got2 = got.clone();
        let ret = eng.register(
            "ret",
            Arc::new(move |ctx: &mut EventCtx| {
                got2.lock().unwrap().extend_from_slice(ctx.args());
                ctx.yield_terminate();
            }),
        );
        let start = eng.register(
            "start",
            Arc::new(move |ctx: &mut EventCtx| {
                let a = VAddr(ctx.arg(0));
                ctx.send_dram_read(a, 3, ret);
            }),
        );
        eng.send(EventWord::new(NetworkId(0), start), [a.0], EventWord::IGNORE);
        let r = eng.run();
        assert_eq!(&*got.lock().unwrap(), &[10, 20, 30]);
        // Issue done t = 2+2+1 = 5; request hop 30; channel: 64B at 4700B/cy
        // = 1 cycle + 200 latency => served at 5+30+1+200 = 236; return hop 30
        // => arrives 266; handler runs 3 cycles (2+1).
        assert_eq!(r.final_tick, 269);
        assert_eq!(r.stats.dram_reads, 1);
    }

    #[test]
    fn dram_write_and_ack() {
        let mut eng = Engine::new(tiny());
        let a = eng.mem_mut().alloc(4096, 0, 1, 4096).unwrap();
        let acked: Arc<Mutex<u32>> = Arc::default();
        let acked2 = acked.clone();
        let ack = eng.register(
            "ack",
            Arc::new(move |ctx: &mut EventCtx| {
                *acked2.lock().unwrap() += 1;
                ctx.yield_terminate();
            }),
        );
        let start = eng.register(
            "start",
            Arc::new(move |ctx: &mut EventCtx| {
                let a = VAddr(ctx.arg(0));
                ctx.send_dram_write(a.word(2), &[99], Some(ack));
            }),
        );
        eng.send(EventWord::new(NetworkId(0), start), [a.0], EventWord::IGNORE);
        eng.run();
        assert_eq!(*acked.lock().unwrap(), 1);
        assert_eq!(eng.mem().read_u64(a.word(2)).unwrap(), 99);
    }

    #[test]
    fn thread_state_persists_across_events() {
        #[derive(Default)]
        struct Acc {
            sum: u64,
            n: u64,
        }
        let mut eng = Engine::new(tiny());
        let done: Arc<Mutex<u64>> = Arc::default();
        let done2 = done.clone();
        // The thread accumulates across three events of itself, self-sending
        // follow-ups (same thread context, state preserved by yield).
        let step = eng.register(
            "step",
            Arc::new(move |ctx: &mut EventCtx| {
                let v = ctx.arg(0);
                let acc = ctx.state_mut::<Acc>();
                acc.sum += v;
                acc.n += 1;
                if acc.n == 3 {
                    let sum = acc.sum;
                    *done2.lock().unwrap() = sum;
                    ctx.yield_terminate();
                } else {
                    let me = ctx.cur_evw();
                    ctx.send_event(me, [v + 1], EventWord::IGNORE);
                }
            }),
        );
        eng.send(EventWord::new(NetworkId(1), step), [5], EventWord::IGNORE);
        eng.run();
        assert_eq!(*done.lock().unwrap(), 5 + 6 + 7);
    }

    #[test]
    fn lane_serializes_events() {
        // Two messages to the same lane: second starts after first ends.
        let mut eng = Engine::new(tiny());
        let times: Arc<Mutex<Vec<u64>>> = Arc::default();
        let t2 = times.clone();
        let busy = eng.register(
            "busy",
            Arc::new(move |ctx: &mut EventCtx| {
                t2.lock().unwrap().push(ctx.now());
                ctx.charge(100);
                ctx.yield_terminate();
            }),
        );
        let kick = eng.register(
            "kick",
            Arc::new(move |ctx: &mut EventCtx| {
                let w = EventWord::new(NetworkId(2), busy);
                ctx.send_event(w, [], EventWord::IGNORE);
                ctx.send_event(w, [], EventWord::IGNORE);
                ctx.yield_terminate();
            }),
        );
        eng.send(EventWord::new(NetworkId(0), kick), [], EventWord::IGNORE);
        eng.run();
        let ts = times.lock().unwrap();
        assert_eq!(ts.len(), 2);
        // First event takes 2 + 100 + 1 = 103 cycles.
        assert_eq!(ts[1] - ts[0], 103);
    }

    #[test]
    fn stop_halts_simulation() {
        let mut eng = Engine::new(tiny());
        let spin = eng.register(
            "spin",
            Arc::new(move |ctx: &mut EventCtx| {
                let me = ctx.cur_evw();
                if ctx.now() > 10_000 {
                    ctx.stop();
                } else {
                    ctx.send_event(me, [], EventWord::IGNORE);
                }
            }),
        );
        eng.send(EventWord::new(NetworkId(0), spin), [], EventWord::IGNORE);
        let r = eng.run();
        assert!(r.final_tick > 10_000);
        assert!(r.final_tick < 20_000);
    }

    #[test]
    fn event_limit_guards_runaway() {
        let mut eng = Engine::new(tiny());
        let spin = eng.register(
            "spin",
            Arc::new(move |ctx: &mut EventCtx| {
                let me = ctx.cur_evw();
                ctx.send_event(me, [], EventWord::IGNORE);
            }),
        );
        eng.set_event_limit(50);
        eng.send(EventWord::new(NetworkId(0), spin), [], EventWord::IGNORE);
        let r = eng.run();
        assert_eq!(r.stats.events_executed, 50);
    }

    #[test]
    fn thread_table_full_parks_and_resumes() {
        let mut cfg = tiny();
        cfg.max_threads_per_lane = 2;
        let mut eng = Engine::new(cfg);
        let ran: Arc<Mutex<u32>> = Arc::default();
        let ran2 = ran.clone();
        // Each hold thread waits for a poke before terminating.
        let poke = eng.register(
            "poke",
            Arc::new(move |ctx: &mut EventCtx| {
                *ran2.lock().unwrap() += 1;
                ctx.yield_terminate();
            }),
        );
        let hold = eng.register(
            "hold",
            Arc::new(move |ctx: &mut EventCtx| {
                // Self-poke after a while: second event of same thread.
                let me = ctx.self_event(poke);
                ctx.charge(50);
                ctx.send_event(me, [], EventWord::IGNORE);
            }),
        );
        let kick = eng.register(
            "kick",
            Arc::new(move |ctx: &mut EventCtx| {
                let w = EventWord::new(NetworkId(1), hold);
                for _ in 0..4 {
                    ctx.send_event(w, [], EventWord::IGNORE);
                }
                ctx.yield_terminate();
            }),
        );
        eng.send(EventWord::new(NetworkId(0), kick), [], EventWord::IGNORE);
        let r = eng.run();
        assert_eq!(*ran.lock().unwrap(), 4, "all four threads eventually ran");
        assert!(r.stats.thread_table_stalls > 0);
    }

    #[test]
    fn determinism() {
        fn run_once() -> (u64, u64) {
            let mut eng = Engine::new(tiny());
            let sink = eng.register("sink", Arc::new(|ctx: &mut EventCtx| ctx.yield_terminate()));
            let fan = eng.register(
                "fan",
                Arc::new(move |ctx: &mut EventCtx| {
                    let n = ctx.config().total_lanes();
                    for i in 0..n {
                        ctx.send_event(
                            EventWord::new(NetworkId(i), sink),
                            [i as u64],
                            EventWord::IGNORE,
                        );
                    }
                    ctx.yield_terminate();
                }),
            );
            eng.send(EventWord::new(NetworkId(0), fan), [], EventWord::IGNORE);
            let r = eng.run();
            (r.final_tick, r.stats.events_executed)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn trace_lines_have_artifact_shape() {
        let mut eng = Engine::new(tiny());
        eng.enable_trace();
        let hello = eng.register(
            "updown_init",
            Arc::new(|ctx: &mut EventCtx| {
                ctx.print("initialization done");
                ctx.yield_terminate();
            }),
        );
        eng.send(EventWord::new(NetworkId(0), hello), [], EventWord::IGNORE);
        eng.run();
        let t = eng.trace();
        assert_eq!(t.len(), 1);
        assert!(t[0].contains("[NWID 0]"));
        assert!(t[0].contains("[updown_init]"));
        assert!(t[0].contains("initialization done"));
    }

    #[test]
    fn fetch_add_f64_returns_old() {
        let mut eng = Engine::new(tiny());
        let a = eng.mem_mut().alloc(4096, 0, 1, 4096).unwrap();
        eng.mem_mut().write_f64(a, 1.5).unwrap();
        let old: Arc<Mutex<f64>> = Arc::default();
        let old2 = old.clone();
        let ret = eng.register(
            "ret",
            Arc::new(move |ctx: &mut EventCtx| {
                *old2.lock().unwrap() = ctx.argf(0);
                ctx.yield_terminate();
            }),
        );
        let go = eng.register(
            "go",
            Arc::new(move |ctx: &mut EventCtx| {
                ctx.dram_fetch_add_f64(VAddr(ctx.arg(0)), 2.25, Some(ret), None);
            }),
        );
        eng.send(EventWord::new(NetworkId(0), go), [a.0], EventWord::IGNORE);
        eng.run();
        assert_eq!(*old.lock().unwrap(), 1.5);
        assert_eq!(eng.mem().read_f64(a).unwrap(), 3.75);
    }

    #[test]
    fn peak_calendar_counts_logical_pending_entries() {
        // Part 1: exact peak for a known program. The kick event posts
        // three timers landing in all three physical structures of the
        // bucketed calendar: same-window ring, near-future ring, and the
        // far-future overflow rung. All three count while pending.
        let mut eng = Engine::new(tiny());
        let sink = eng.register("sink", Arc::new(|ctx: &mut EventCtx| ctx.yield_terminate()));
        let kick = eng.register(
            "kick",
            Arc::new(move |ctx: &mut EventCtx| {
                let w = EventWord::new(ctx.nwid().next(), sink);
                ctx.send_event_after(0, w, [], EventWord::IGNORE);
                ctx.send_event_after(10, w, [], EventWord::IGNORE);
                ctx.send_event_after(5000, w, [], EventWord::IGNORE);
                ctx.yield_terminate();
            }),
        );
        eng.send(EventWord::new(NetworkId(0), kick), [], EventWord::IGNORE);
        let r = eng.run();
        // Peak: the three Deliver entries pending together after the kick
        // (deliveries arrive at distinct ticks; a LaneRun replaces each
        // popped Deliver, never exceeding three).
        assert_eq!(r.stats.peak_calendar, 3);

        // Part 2: parked messages and inbox backlogs are NOT calendar
        // entries. Three creations race to a lane with one hardware
        // context: two park, yet the peak stays the same three Delivers.
        let mut cfg = tiny();
        cfg.max_threads_per_lane = 1;
        let mut eng = Engine::new(cfg);
        let hold = eng.register("hold", Arc::new(|_: &mut EventCtx| {}));
        let kick = eng.register(
            "kick",
            Arc::new(move |ctx: &mut EventCtx| {
                let w = EventWord::new(ctx.nwid().next(), hold);
                for _ in 0..3 {
                    ctx.send_event(w, [], EventWord::IGNORE);
                }
                ctx.yield_terminate();
            }),
        );
        eng.send(EventWord::new(NetworkId(0), kick), [], EventWord::IGNORE);
        let r = eng.run();
        assert_eq!(r.stats.thread_table_stalls, 2, "two creations parked");
        assert_eq!(
            r.stats.peak_calendar, 3,
            "parked/inbox messages must not count as calendar entries"
        );
    }

    /// A program touching every traced subsystem — fan-out messages
    /// (local + remote), DRAM write/read, phases, custom and sampled
    /// counters, `[PRINT]` lines — run with and without tracing.
    fn observed_run_with(print_trace: bool, event_trace: bool) -> Engine {
        let mut eng = Engine::new(tiny());
        if print_trace {
            eng.enable_trace();
        }
        if event_trace {
            eng.enable_event_trace();
        }
        let a = eng.mem_mut().alloc(4096, 0, 1, 4096).unwrap();
        let sink = eng.register("sink", Arc::new(|ctx: &mut EventCtx| ctx.yield_terminate()));
        // DRAM responses come back to the issuing thread: count both
        // (write ack + read data) before terminating.
        let fin = eng.register(
            "fin",
            Arc::new(|ctx: &mut EventCtx| {
                let n = ctx.state_mut::<u64>();
                *n += 1;
                if *n == 2 {
                    ctx.trace_counter_add("inflight", -1);
                    ctx.phase_end("io");
                    ctx.yield_terminate();
                }
            }),
        );
        let go = eng.register(
            "go",
            Arc::new(move |ctx: &mut EventCtx| {
                ctx.phase_begin("io");
                ctx.bump("kicks", 1);
                ctx.trace_counter_add("inflight", 1);
                let from = ctx.nwid().0;
                ctx.print_with(|| format!("fan-out from lane {from}"));
                let n = ctx.config().total_lanes();
                for i in 0..n {
                    ctx.send_event(
                        EventWord::new(NetworkId(i), sink),
                        [i as u64],
                        EventWord::IGNORE,
                    );
                }
                ctx.send_dram_write(VAddr(a.0), &[7], Some(fin));
                ctx.send_dram_read(VAddr(a.0), 1, fin);
            }),
        );
        eng.send(EventWord::new(NetworkId(0), go), [], EventWord::IGNORE);
        eng.run();
        eng
    }

    fn observed_run(traced: bool) -> Engine {
        observed_run_with(false, traced)
    }

    #[test]
    fn event_trace_has_zero_observer_effect() {
        let off = observed_run(false);
        let on = observed_run(true);
        assert!(off.event_trace().is_empty());
        assert!(!on.event_trace().is_empty());
        // Byte-identical metrics: same ticks, counters, phases, custom.
        assert_eq!(off.metrics().to_json(), on.metrics().to_json());
    }

    #[test]
    fn tracing_never_changes_peak_calendar() {
        // Observer-effect guard for the trace fast path: enabling either
        // trace kind (or both) must leave every metric — `peak_calendar`
        // in particular — byte-identical to the untraced run.
        let off = observed_run_with(false, false);
        let base = off.metrics();
        for (print_trace, event_trace) in [(true, false), (false, true), (true, true)] {
            let on = observed_run_with(print_trace, event_trace);
            assert_eq!(
                base.stats.peak_calendar,
                on.metrics().stats.peak_calendar,
                "peak_calendar changed under tracing ({print_trace}, {event_trace})"
            );
            assert_eq!(base.to_json(), on.metrics().to_json());
            if print_trace {
                assert!(!on.trace().is_empty(), "print trace recorded");
            }
        }
    }

    #[test]
    fn event_trace_covers_all_subsystems() {
        let eng = observed_run(true);
        let evs = eng.event_trace();
        let mut execs = 0;
        let mut msgs = 0;
        let mut drams = 0;
        let mut counters = 0;
        let mut links = 0;
        for e in evs {
            match e {
                TraceEvent::Exec { start, end, .. } => {
                    assert!(start <= end);
                    execs += 1;
                }
                TraceEvent::MsgTransit { depart, arrive, .. } => {
                    assert!(depart < arrive);
                    msgs += 1;
                }
                TraceEvent::Dram { .. } => drams += 1,
                TraceEvent::Counter { .. } => counters += 1,
                TraceEvent::Link { .. } => links += 1,
            }
        }
        // go + 16 sinks + dram ack + dram data, at least.
        assert!(execs >= 18, "execs = {execs}");
        assert!(msgs >= 16, "msgs = {msgs}");
        assert_eq!(drams, 6, "2 transactions x 3 stages");
        assert_eq!(counters, 2);
        assert!(links >= 1, "cross-node traffic records link traversals");
        assert_eq!(eng.phases().len(), 1);
        assert!(!eng.phases()[0].is_open());
    }

    /// A 4-node program exercising cross-node messages, remote DRAM, and
    /// phases; used to compare schedulers.
    fn scheduler_probe(threads: u32) -> (String, u64, u64) {
        let mut cfg = MachineConfig::small(4, 2, 4);
        cfg.threads = threads;
        let lanes_per_node = cfg.lanes_per_node();
        let mut eng = Engine::new(cfg);
        let a = eng.mem_mut().alloc(1 << 14, 0, 4, 4096).unwrap();
        let bounce = eng.register(
            "bounce",
            Arc::new(move |ctx: &mut EventCtx| {
                let hops = ctx.arg(0);
                ctx.dram_fetch_add_u64(VAddr(ctx.arg(1)).word(hops % 64), 1, None, None);
                if hops > 0 {
                    let next = (ctx.nwid().0 + lanes_per_node + 1)
                        % ctx.config().total_lanes();
                    let w = EventWord::new(NetworkId(next), ctx.msg.dst.label());
                    ctx.send_event(w, [hops - 1, ctx.arg(1)], EventWord::IGNORE);
                }
                ctx.yield_terminate();
            }),
        );
        eng.phase_begin("bounce");
        for l in 0..4 {
            eng.send(
                EventWord::new(NetworkId(l * lanes_per_node), bounce),
                [12, a.0],
                EventWord::IGNORE,
            );
        }
        let m = eng.run();
        eng.phase_end("bounce");
        let sum: u64 = (0..64)
            .map(|i| eng.mem().read_u64(a.word(i)).unwrap())
            .sum();
        (eng.metrics().to_json(), m.final_tick, sum)
    }

    #[test]
    fn parallel_is_byte_identical_to_sequential() {
        let seq = scheduler_probe(1);
        for threads in [2, 3, 4, 7] {
            let par = scheduler_probe(threads);
            assert_eq!(seq, par, "threads={threads} diverged from sequential");
        }
        // 4 initial sends x 13 bounce events each.
        assert_eq!(seq.2, 4 * 13);
    }

    #[test]
    fn windows_counter_reported() {
        let (json, _, _) = scheduler_probe(2);
        assert!(json.contains("\"windows\":"));
        let m: crate::json::JsonValue = crate::json::JsonValue::parse(&json).unwrap();
        let w = m.get("counters").unwrap().get("windows").unwrap().as_u64().unwrap();
        assert!(w > 0, "cross-node run must take at least one window");
    }

    #[test]
    fn message_conservation_on_completed_run() {
        let (json, _, _) = scheduler_probe(3);
        let m = crate::json::JsonValue::parse(&json).unwrap();
        let c = m.get("counters").unwrap();
        let total = c.get("total_msgs").unwrap().as_u64().unwrap();
        let delivered = c.get("msgs_delivered").unwrap().as_u64().unwrap();
        let dropped = c.get("msgs_dropped").unwrap().as_u64().unwrap();
        assert_eq!(total, delivered + dropped);
        assert_eq!(dropped, 0, "completed run drops nothing");
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_went_backwards_is_a_hard_error() {
        let mut eng = Engine::new(tiny());
        let sink = eng.register("sink", Arc::new(|ctx: &mut EventCtx| ctx.yield_terminate()));
        eng.send(EventWord::new(NetworkId(0), sink), [], EventWord::IGNORE);
        // A pending entry at t=0 with the clock forced ahead of it must be
        // rejected as a causality violation, not silently reordered.
        eng.force_clock_for_test(1_000_000);
        eng.run();
    }
}
