//! Topology conformance: every selectable system network must keep the
//! engine's core guarantee — byte-identical results across thread counts
//! — and the routed topologies must actually change what the fabric
//! measures (multi-hop routes inflate per-link traffic vs the uniform
//! crossbar).

use updown_apps::bfs::{run_bfs, BfsConfig};
use updown_apps::pagerank::{run_pagerank, PrConfig};
use updown_graph::generators::{rmat, RmatParams};
use updown_graph::preprocess::{dedup_sort, split_in_out};
use updown_graph::Csr;
use updown_sim::json::JsonValue;
use updown_sim::{MachineConfig, Metrics, TopologyKind};

/// Thread counts pinned by the issue's acceptance criteria.
const THREADS: &[u32] = &[1, 2, 4];

fn machine(nodes: u32, threads: u32, topo: TopologyKind) -> MachineConfig {
    let mut m = MachineConfig::small(nodes, 2, 8);
    m.threads = threads;
    m.net.topology = topo;
    m
}

fn pr_run(nodes: u32, threads: u32, topo: TopologyKind) -> (String, Metrics) {
    let g = Csr::from_edges(&dedup_sort(rmat(8, RmatParams::default(), 10)));
    let sg = split_in_out(&g, 64);
    let mut cfg = PrConfig::new(nodes);
    cfg.machine = machine(nodes, threads, topo);
    cfg.iterations = 2;
    let r = run_pagerank(&sg, &cfg);
    let fp = format!(
        "{:?} {:?}",
        r.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        r.iter_ticks
    );
    (fp, r.report)
}

fn bfs_run(nodes: u32, threads: u32, topo: TopologyKind) -> (String, Metrics) {
    let g = Csr::from_edges(&dedup_sort(
        rmat(8, RmatParams::default(), 11).symmetrize(),
    ));
    let mut cfg = BfsConfig::new(nodes, 0);
    cfg.machine = machine(nodes, threads, topo);
    let r = run_bfs(&g, &cfg);
    let fp = format!(
        "{:?} {} {:?} {}",
        r.dist, r.rounds, r.round_ticks, r.traversed_edges
    );
    (fp, r.report)
}

/// Every topology, two apps: results and the full metrics JSON (fabric
/// section included) are byte-identical at threads {1, 2, 4}.
#[test]
fn every_topology_is_byte_identical_across_threads() {
    for topo in TopologyKind::ALL {
        for (app, run) in [
            ("pr", pr_run as fn(u32, u32, TopologyKind) -> (String, Metrics)),
            ("bfs", bfs_run),
        ] {
            let (fp, m) = run(4, THREADS[0], topo);
            let json = m.to_json();
            for &t in &THREADS[1..] {
                let (pfp, pm) = run(4, t, topo);
                assert_eq!(fp, pfp, "{app} {topo} threads={t}: result diverged");
                assert_eq!(
                    json,
                    pm.to_json(),
                    "{app} {topo} threads={t}: metrics JSON diverged"
                );
            }
        }
    }
}

/// The explicit `--topology uniform` selection is the default model: a
/// config that never mentions topology and one that selects Uniform
/// produce byte-identical metrics JSON.
#[test]
fn uniform_selection_matches_default_model() {
    let (fp_default, m_default) = pr_run(4, 1, TopologyKind::default());
    let (fp_uniform, m_uniform) = pr_run(4, 1, TopologyKind::Uniform);
    assert_eq!(fp_default, fp_uniform);
    assert_eq!(m_default.to_json(), m_uniform.to_json());
}

/// The fabric section of the exported JSON is consistent with the
/// in-memory metrics and with the per-node NIC counters.
#[test]
fn fabric_json_round_trips_and_matches_nic_counters() {
    for &topo in &[TopologyKind::Uniform, TopologyKind::Torus] {
        let (_, m) = pr_run(4, 1, topo);
        let v = JsonValue::parse(&m.to_json()).expect("valid JSON");
        let f = v.get("fabric").unwrap();
        assert_eq!(f.get("topology").unwrap().as_str(), Some(topo.name()));
        // NIC totals round-trip: fabric.nic_injected_bytes is the sum of
        // the per-node nic_injected_bytes values already in the document.
        let per_node: u64 = v
            .get("nodes")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|n| n.get("nic_injected_bytes").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(
            f.get("nic_injected_bytes").unwrap().as_u64(),
            Some(per_node),
            "{topo}: fabric NIC total disagrees with per-node counters"
        );
        assert!(per_node > 0, "{topo}: cross-node app must inject bytes");
        assert_eq!(
            f.get("link_bytes_total").unwrap().as_u64(),
            Some(m.fabric.link_bytes_total)
        );
        assert_eq!(
            f.get("peak_window_bytes").unwrap().as_u64(),
            Some(m.fabric.peak_window_bytes)
        );
        assert!(f.get("peak_link_gbps").unwrap().as_f64().is_some());
        let links_used = f.get("links_used").unwrap().as_u64().unwrap();
        assert!(links_used > 0, "{topo}: traffic must touch links");
        assert!(links_used <= f.get("links_total").unwrap().as_u64().unwrap());
        let top = f.get("top_links").unwrap().as_arr().unwrap();
        assert!(!top.is_empty());
        assert!(top[0].get("peak_gbps").unwrap().as_f64().is_some());
    }
}

/// Same app, same scale, two topologies: the fabric must measure a
/// congestion difference. The workloads are near-identical at the NIC
/// (within a few permille — combining effects are timing-dependent), so
/// a materially different peak-window demand is the topology's doing:
/// routed links carry through-traffic the crossbar's dedicated
/// up/down segments never see.
#[test]
fn topologies_show_a_congestion_difference() {
    let (_, uniform) = pr_run(4, 1, TopologyKind::Uniform);
    let (_, torus) = pr_run(4, 1, TopologyKind::Torus);
    let (u, t) = (&uniform.fabric, &torus.fabric);
    // Same workload, to within combining noise.
    let nic_delta = u.nic_injected_bytes.abs_diff(t.nic_injected_bytes);
    assert!(
        nic_delta * 50 < u.nic_injected_bytes,
        "workloads drifted too far apart to compare ({} vs {})",
        u.nic_injected_bytes,
        t.nic_injected_bytes
    );
    assert!(u.peak_window_bytes > 0 && t.peak_window_bytes > 0);
    // The congestion signal: the hot-spot windows differ by far more
    // than the workload difference could explain.
    let peak_delta = u.peak_window_bytes.abs_diff(t.peak_window_bytes);
    assert!(
        peak_delta * 10 > u.peak_window_bytes.min(t.peak_window_bytes),
        "peak demand should differ materially between topologies \
         (uniform {} vs torus {})",
        u.peak_window_bytes,
        t.peak_window_bytes
    );
}

/// Routed transit is visible in simulated time: a diameter-2 topology
/// with 400-cycle hops must finish a cross-node-heavy app in a different
/// final tick than the 1000-cycle uniform model (the paper's ablation
/// axis), while uniform matches the historical model exactly.
#[test]
fn routed_topologies_change_transit_times() {
    let (_, uniform) = bfs_run(4, 1, TopologyKind::Uniform);
    let (_, polar) = bfs_run(4, 1, TopologyKind::Polar);
    assert_ne!(
        uniform.final_tick, polar.final_tick,
        "routed hops should shift end-to-end latency"
    );
}
