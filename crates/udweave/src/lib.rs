#![forbid(unsafe_code)]
//! # udweave
//!
//! The UDWeave programming layer (§2.1 of the paper) over the
//! [`updown_sim`] machine: threads with atomically-executing events, the
//! `evw_*` intrinsics, explicit continuations, and the standard library
//! utilities the paper catalogues in Table 5 — spMalloc, the combining
//! cache (software fetch-and-add), and collective trees.
//!
//! UDWeave is a C-like DSL in the paper; here the same model is embedded in
//! Rust. A thread is a state struct; its events are closures taking
//! `(&mut EventCtx, &mut State)`; messages and continuations are explicit
//! event words exactly as in the listings.
//!
//! ```
//! use udweave::prelude::*;
//! use updown_sim::{Engine, MachineConfig};
//!
//! let mut eng = Engine::new(MachineConfig::small(1, 1, 4));
//! let e3 = simple_event(&mut eng, "e3", |ctx| ctx.yield_terminate());
//! let e2 = simple_event(&mut eng, "e2", |ctx| {
//!     ctx.send_reply([]);
//!     ctx.yield_terminate();
//! });
//! let e1 = simple_event(&mut eng, "e1", move |ctx| {
//!     let evw = evw_new(ctx.nwid().next(), e2);
//!     let ct = ctx.self_event(e3);
//!     ctx.send_event(evw, [0, 1], ct);
//! });
//! eng.send(evw_new(NetworkId(0), e1), [], IGNRCONT);
//! let r = eng.run();
//! assert_eq!(r.stats.events_executed, 3);
//! ```

pub mod collectives;
pub mod combining;
pub mod intrinsics;
pub mod program;
pub mod queue;
pub mod spmalloc;

pub use collectives::{heap_children, heap_parent, LaneSet, TreeComm, ACK_WORDS};
pub use combining::{CombiningCache, Kind};
pub use intrinsics::{evw_new, evw_update_event, IGNRCONT};
pub use program::{event, simple_event, ThreadType};
pub use queue::{QueueId, QueueLib};
pub use spmalloc::{sp_malloc, SpSlice};
pub use updown_sim::spec::{
    Bound, EventDecl, ProgramSpec, SendDecl, SpecFinding, SpecSeverity, ThreadDecl, Workload,
};

/// Common imports for UDWeave-style programs.
pub mod prelude {
    pub use crate::collectives::{LaneSet, TreeComm};
    pub use crate::combining::{CombiningCache, Kind};
    pub use crate::intrinsics::{evw_new, evw_update_event, IGNRCONT};
    pub use crate::program::{event, simple_event, ThreadType};
    pub use crate::spmalloc::{sp_malloc, SpSlice};
    pub use updown_sim::spec::ProgramSpec;
    pub use updown_sim::{
        EventCtx, EventLabel, EventWord, NetworkId, ThreadId, VAddr,
    };
}
