//! Forest Fire generator (Leskovec et al.): each new vertex picks an
//! ambassador and "burns" outward with geometric fanout, yielding shrinking
//! diameters and heavy-tailed in-degrees — the paper's "Forest Fire s28"
//! input, scaled down.

use crate::csr::EdgeList;
use crate::rng::Rng;

/// `n = 2^scale` vertices; `p` is the forward-burning probability
/// (0 < p < 1; ~0.35 gives realistic densification without blow-up).
pub fn forest_fire(scale: u32, p: f64, seed: u64) -> EdgeList {
    assert!((1..=28).contains(&scale));
    assert!(p > 0.0 && p < 0.95);
    let n = 1u32 << scale;
    let mut rng = Rng::seed_from_u64(seed);
    let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Geometric mean fanout p/(1-p).
    let mut burned = vec![u32::MAX; n as usize]; // epoch marks
    for v in 1..n {
        let amb = rng.below_u32(v);
        let mut frontier = vec![amb];
        burned[v as usize] = v;
        burned[amb as usize] = v;
        // Cap total burn to keep edge counts near-linear.
        let cap = 64usize;
        let mut total = 0usize;
        while let Some(w) = frontier.pop() {
            edges.push((v, w));
            out_adj[v as usize].push(w);
            total += 1;
            if total >= cap {
                break;
            }
            // Burn a geometric number of w's out-neighbors.
            let mut links: Vec<u32> = out_adj[w as usize]
                .iter()
                .copied()
                .filter(|&x| burned[x as usize] != v)
                .collect();
            while !links.is_empty() && rng.f64() < p {
                let i = rng.below_usize(links.len());
                let x = links.swap_remove(i);
                burned[x as usize] = v;
                frontier.push(x);
            }
        }
    }
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    #[test]
    fn connected_ish_and_deterministic() {
        let a = forest_fire(8, 0.35, 5);
        assert_eq!(a, forest_fire(8, 0.35, 5));
        // Every vertex except 0 has at least one out-edge.
        let g = Csr::from_edges(&a);
        for v in 1..g.n() {
            assert!(g.degree(v) >= 1, "vertex {v} burned nothing");
        }
    }

    #[test]
    fn higher_p_burns_more() {
        let lo = forest_fire(9, 0.1, 1).m();
        let hi = forest_fire(9, 0.6, 1).m();
        assert!(hi > lo, "p=0.6 ({hi}) should out-burn p=0.1 ({lo})");
    }

    #[test]
    fn in_degree_skew() {
        // Early vertices accumulate in-links (rich get richer).
        let el = forest_fire(11, 0.4, 2);
        let mut indeg = vec![0u32; el.n as usize];
        for &(_, d) in &el.edges {
            indeg[d as usize] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        assert!(max > 20, "expected skewed in-degree, max {max}");
    }
}
