//! Design-choice ablations called out in DESIGN.md §5, reported in
//! *simulated ticks* (printed) with host wall time measured alongside:
//!
//! 1. PR reduce: direct fetch-and-add vs combining cache.
//! 2. TC reduce: dual-stream vs scratchpad-reuse (§4.3.3).
//! 3. Map binding under skew: Block vs Cyclic vs PBMW (§2.3/§4.3.3).
//! 4. KVMSR in-flight window sweep.

use bench::timing::bench_host;
use std::sync::Mutex;
use std::sync::Arc;

use kvmsr::{JobSpec, Kvmsr, MapBinding, Outcome};
use udweave::{simple_event, LaneSet};
use updown_apps::pagerank::{run_pagerank, PrConfig};
use updown_apps::tc::{run_tc, TcConfig, TcVariant};
use updown_graph::generators::{rmat, RmatParams};
use updown_graph::preprocess::{dedup_sort, split_in_out};
use updown_graph::Csr;
use updown_sim::{Engine, EventWord, MachineConfig, NetworkId};

fn pr_ticks(combining: bool) -> u64 {
    let g = Csr::from_edges(&dedup_sort(rmat(11, RmatParams::default(), 9)));
    let sg = split_in_out(&g, 64);
    let mut cfg = PrConfig::new(2);
    cfg.machine = MachineConfig::small(2, 4, 16);
    cfg.iterations = 1;
    cfg.combining = combining;
    run_pagerank(&sg, &cfg).final_tick
}

fn tc_ticks(variant: TcVariant) -> u64 {
    let mut g = Csr::from_edges(&dedup_sort(rmat(9, RmatParams::default(), 9).symmetrize()));
    g.sort_neighbors();
    let mut cfg = TcConfig::new(1);
    cfg.machine = MachineConfig::small(1, 4, 16);
    cfg.variant = variant;
    run_tc(&g, &cfg).final_tick
}

fn skew_job_ticks(binding: MapBinding, window: u32) -> u64 {
    let mut eng = Engine::new(MachineConfig::small(1, 4, 16));
    let rt = Kvmsr::install(&mut eng);
    let set = LaneSet::all(eng.config());
    let job = rt.define_job(
        JobSpec::new("skew", set, move |ctx, task, _rt| {
            // The first block of keys is 50x more expensive.
            ctx.charge(if task.key < 512 { 2000 } else { 40 });
            Outcome::Done
        })
        .map_binding(binding)
        .window(window),
    );
    let done: Arc<Mutex<bool>> = Arc::default();
    let d = done.clone();
    let fin = simple_event(&mut eng, "fin", move |ctx| {
        *d.lock().unwrap() = true;
        ctx.stop();
    });
    let (evw, args) = rt.start_msg(job, 8192, 0);
    eng.send(evw, args, EventWord::new(NetworkId(0), fin));
    let r = eng.run();
    assert!(*done.lock().unwrap());
    r.final_tick
}

/// Window ablation needs a latency-bound job: each map chains a remote
/// DRAM read, so in-flight depth controls latency hiding.
fn window_job_ticks(window: u32) -> u64 {
    use drammalloc::{Layout, Region};
    use kvmsr::MapTask;
    #[derive(Clone, Default)]
    struct St {
        task: Option<MapTask>,
    }
    let mut eng = Engine::new(MachineConfig::small(4, 2, 8));
    let data = Region::alloc_words(&mut eng, 8192, Layout::cyclic_bs(4, 32 * 1024)).unwrap();
    let rt = Kvmsr::install(&mut eng);
    let rt2 = rt.clone();
    let ret = udweave::event::<St>(&mut eng, "ret", move |ctx, st| {
        let t = st.task.unwrap();
        rt2.map_done(ctx, &t);
        ctx.yield_terminate();
    });
    let set = LaneSet::all(eng.config());
    let job = rt.define_job(
        JobSpec::new("mem", set, move |ctx, task, _rt| {
            ctx.state_mut::<St>().task = Some(*task);
            ctx.send_dram_read(data.word(task.key % 8192), 1, ret);
            Outcome::Async
        })
        .window(window),
    );
    let done: Arc<Mutex<bool>> = Arc::default();
    let d = done.clone();
    let fin = simple_event(&mut eng, "fin", move |ctx| {
        *d.lock().unwrap() = true;
        ctx.stop();
    });
    let (evw, args) = rt.start_msg(job, 8192, 0);
    eng.send(evw, args, EventWord::new(NetworkId(0), fin));
    let r = eng.run();
    assert!(*done.lock().unwrap());
    r.final_tick
}

fn main() {
    println!("\n--- ablation: PR reduce accumulation (simulated ticks) ---");
    let direct = pr_ticks(false);
    let combining = pr_ticks(true);
    println!("  direct fetch-add: {direct}");
    println!("  combining cache:  {combining}");

    println!("--- ablation: TC reduce variant (simulated ticks) ---");
    let dual = tc_ticks(TcVariant::DualStream);
    let spd = tc_ticks(TcVariant::SpdReuse);
    println!("  dual-stream: {dual}");
    println!("  spd-reuse:   {spd}");

    println!("--- ablation: map binding under 50x key skew (simulated ticks) ---");
    for (name, b) in [
        ("Block", MapBinding::Block),
        ("Cyclic", MapBinding::Cyclic),
        ("PBMW/16", MapBinding::Pbmw { chunk: 16 }),
        ("PBMW/4", MapBinding::Pbmw { chunk: 4 }),
    ] {
        println!("  {name:>8}: {}", skew_job_ticks(b, 64));
    }

    println!("--- ablation: in-flight window, latency-bound job (simulated ticks) ---");
    for w in [1u32, 4, 16, 64, 256] {
        println!("  window {w:>3}: {}", window_job_ticks(w));
    }

    bench_host("ablation_skew_block", 10, || {
        skew_job_ticks(MapBinding::Block, 64)
    });
    bench_host("ablation_skew_pbmw", 10, || {
        skew_job_ticks(MapBinding::Pbmw { chunk: 16 }, 64)
    });
}
