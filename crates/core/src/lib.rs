#![forbid(unsafe_code)]
//! # kvmsr
//!
//! **KVMSR** — key-value map-shuffle-reduce (§2.2 of the paper): the
//! programming model that organizes massive-scale parallelism on UpDown.
//! This crate is the paper's primary contribution, re-implemented over the
//! [`udweave`] runtime and [`updown_sim`] machine model.
//!
//! KVMSR extends cloud MapReduce with:
//!
//! - **fine-grained tasks** — a task per key, 10–100 instructions each;
//! - **shared mutable global state** — `kv_map` / `kv_reduce` read and
//!   write the global address space directly (PageRank values, BFS
//!   frontiers, hash tables, ...);
//! - **separable computation binding** (§2.3) — Block / Hash / PBMW /
//!   custom placement of map and reduce tasks, independent of the
//!   program's parallel structure;
//! - **asynchronous multi-event tasks** — maps and reduces may span DRAM
//!   round-trips (Listing 3's `kv_map` + `returnRead`).
//!
//! See [`runtime::Kvmsr`] for the execution protocol and
//! [`binding`] for the placement schemes.

pub mod binding;
pub mod doall;
pub mod runtime;
pub mod sort;
pub mod task;

pub use binding::{key_hash, KeyRange, MapBinding, ReduceBinding};
pub use doall::define_do_all;
pub use runtime::{skeleton_workload, spec, spec_with, JobSpec, Kvmsr, MapFn, ReduceFn};
pub use task::{JobId, MapTask, Outcome, ReduceTask};
