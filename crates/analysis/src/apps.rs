//! Shared conformance-scale application harness for the `udcheck` and
//! `udrace` CLIs. Each app runs at the same tiny deterministic scale as
//! `tests/tests/conformance.rs`, so a clean bill here covers the exact
//! protocols the conformance matrix exercises.

use updown_apps::bfs::{run_bfs, BfsConfig};
use updown_apps::ingest::{datagen, run_ingest, IngestConfig};
use updown_apps::pagerank::{run_pagerank, PrConfig};
use updown_apps::partial_match::{run_partial_match, PmConfig};
use updown_apps::tc::{run_tc, TcConfig};
use updown_graph::generators::{rmat, RmatParams};
use updown_graph::preprocess::{dedup_sort, split_in_out};
use updown_graph::Csr;
use updown_sim::{MachineConfig, ProgramSpec, ProtocolProbe, RaceProbe};

/// Canonical names of all five applications, in report order.
pub const ALL_APPS: &[&str] = &["pagerank", "bfs", "tc", "ingest", "partial_match"];

/// Canonicalize an app name from the command line (`pr`/`pm` aliases).
pub fn canon_app(app: &str) -> Option<&'static str> {
    match app {
        "pagerank" | "pr" => Some("pagerank"),
        "bfs" => Some("bfs"),
        "tc" => Some("tc"),
        "ingest" => Some("ingest"),
        "partial_match" | "pm" => Some("partial_match"),
        _ => None,
    }
}

/// Declared-effects protocol spec for an app (see `docs/udspec.md`).
/// `app` must be canonical (see [`canon_app`]).
///
/// # Panics
///
/// Panics on a non-canonical app name.
pub fn spec_for(app: &str) -> ProgramSpec {
    match app {
        "pagerank" => updown_apps::pagerank::spec(),
        "bfs" => updown_apps::bfs::spec(),
        "tc" => updown_apps::tc::spec(),
        "ingest" => updown_apps::ingest::spec(),
        "partial_match" => updown_apps::partial_match::spec(),
        other => panic!("unknown app '{other}' (use canon_app first)"),
    }
}

/// Instrumentation to attach to a conformance-scale run.
#[derive(Clone, Default)]
pub struct Probes {
    /// Protocol probe (event-flow summary); `udcheck` always attaches one,
    /// `udrace` attaches one to build the flow graph for may-race.
    pub probe: Option<ProtocolProbe>,
    /// Race probe (happens-before detector).
    pub race: Option<RaceProbe>,
    /// Attach the runtime sanitizer.
    pub sanitize: bool,
    /// Enforce a declared-effects protocol spec (`udspec --enforce`).
    pub spec: Option<ProgramSpec>,
}

/// Tiny machine matching the conformance suite with the probes attached.
fn machine(nodes: u32, threads: u32, p: &Probes) -> MachineConfig {
    let mut m = MachineConfig::small(nodes, 2, 8);
    m.threads = threads;
    m.sanitize = p.sanitize;
    m.probe = p.probe.clone();
    m.race = p.race.clone();
    m.enforce_spec = p.spec.clone();
    m
}

/// Build the conformance-scale workload descriptor for one app: the same
/// deterministic inputs as [`run_app`], fed to each app's `workload()`
/// hook instead of its simulator entry point. Returns the workload, the
/// machine it describes, and the app's declared spec — everything
/// `udcost` needs, with zero simulation.
///
/// `app` must be canonical (see [`canon_app`]).
///
/// # Panics
///
/// Panics on a non-canonical app name.
pub fn workload_for(
    app: &str,
    threads: u32,
    seed: u64,
) -> (updown_sim::spec::Workload, MachineConfig, ProgramSpec) {
    let mc = machine(2, threads, &Probes::default());
    let w = match app {
        "pagerank" => {
            let g = Csr::from_edges(&dedup_sort(rmat(8, RmatParams::default(), seed)));
            let sg = split_in_out(&g, 64);
            let mut cfg = PrConfig::new(2);
            cfg.machine = mc.clone();
            cfg.iterations = 2;
            updown_apps::pagerank::workload(&sg, &cfg)
        }
        "bfs" => {
            let g = Csr::from_edges(&dedup_sort(
                rmat(8, RmatParams::default(), seed).symmetrize(),
            ));
            let mut cfg = BfsConfig::new(2, 0);
            cfg.machine = mc.clone();
            updown_apps::bfs::workload(&g, &cfg)
        }
        "tc" => {
            let mut g = Csr::from_edges(&dedup_sort(
                rmat(7, RmatParams::default(), seed).symmetrize(),
            ));
            g.sort_neighbors();
            let mut cfg = TcConfig::new(2);
            cfg.machine = mc.clone();
            updown_apps::tc::workload(&g, &cfg)
        }
        "ingest" => {
            let ds = datagen::generate(250, 120, seed);
            let mut cfg = IngestConfig::new(2);
            cfg.machine = mc.clone();
            updown_apps::ingest::workload(&ds, &cfg)
        }
        "partial_match" => {
            let ds = datagen::generate(200, 60, seed);
            let mut cfg = PmConfig::new(8, vec![1, 2]);
            cfg.machine = mc.clone();
            cfg.batch = 16;
            cfg.interval = 200;
            cfg.feeders = 2;
            updown_apps::partial_match::workload(&ds.records, &cfg)
        }
        other => panic!("unknown app '{other}' (use canon_app first)"),
    };
    (w, mc, spec_for(app))
}

/// Run one app at conformance scale with the given probes attached.
/// `app` must be canonical (see [`canon_app`]).
///
/// # Panics
///
/// Panics on a non-canonical app name.
pub fn run_app(app: &str, threads: u32, seed: u64, probes: &Probes) {
    match app {
        "pagerank" => {
            let g = Csr::from_edges(&dedup_sort(rmat(8, RmatParams::default(), seed)));
            let sg = split_in_out(&g, 64);
            let mut cfg = PrConfig::new(2);
            cfg.machine = machine(2, threads, probes);
            cfg.iterations = 2;
            run_pagerank(&sg, &cfg);
        }
        "bfs" => {
            let g = Csr::from_edges(&dedup_sort(
                rmat(8, RmatParams::default(), seed).symmetrize(),
            ));
            let mut cfg = BfsConfig::new(2, 0);
            cfg.machine = machine(2, threads, probes);
            run_bfs(&g, &cfg);
        }
        "tc" => {
            let mut g = Csr::from_edges(&dedup_sort(
                rmat(7, RmatParams::default(), seed).symmetrize(),
            ));
            g.sort_neighbors();
            let mut cfg = TcConfig::new(2);
            cfg.machine = machine(2, threads, probes);
            run_tc(&g, &cfg);
        }
        "ingest" => {
            let ds = datagen::generate(250, 120, seed);
            let mut cfg = IngestConfig::new(2);
            cfg.machine = machine(2, threads, probes);
            run_ingest(&ds, &cfg);
        }
        "partial_match" => {
            let ds = datagen::generate(200, 60, seed);
            let mut cfg = PmConfig::new(8, vec![1, 2]);
            cfg.machine = machine(2, threads, probes);
            cfg.batch = 16;
            cfg.interval = 200;
            cfg.feeders = 2;
            run_partial_match(&ds.records, &cfg);
        }
        other => panic!("unknown app '{other}' (use canon_app first)"),
    }
}
