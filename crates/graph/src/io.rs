//! Graph I/O matching the artifact's file formats: plain-text edge lists
//! (with `-l <offset>` comment skipping) and the binary `*_gv.bin` /
//! `*_nl.bin` pair produced by the preprocessors.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::{Csr, EdgeList};

const GV_MAGIC: u64 = 0x5544_4756; // "UDGV"
const NL_MAGIC: u64 = 0x5544_4E4C; // "UDNL"

/// Parse a whitespace/tab-separated edge list, skipping `skip_lines` header
/// lines and any line starting with `#` (SNAP convention). If `directed`
/// is false, reverse edges are added (the artifact's default without `-d`).
pub fn read_edge_list(path: &Path, skip_lines: usize, directed: bool) -> io::Result<EdgeList> {
    let f = BufReader::new(File::open(path)?);
    let mut edges = Vec::new();
    let mut max_v = 0u32;
    for (i, line) in f.lines().enumerate() {
        let line = line?;
        if i < skip_lines || line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let s: u32 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("line {i}")))?;
        let d: u32 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("line {i}")))?;
        max_v = max_v.max(s).max(d);
        edges.push((s, d));
    }
    let el = EdgeList::new(max_v + 1, edges);
    Ok(if directed { el } else { el.symmetrize() })
}

pub fn write_edge_list(path: &Path, el: &EdgeList) -> io::Result<()> {
    let mut f = BufWriter::new(File::create(path)?);
    for &(s, d) in &el.edges {
        writeln!(f, "{s}\t{d}")?;
    }
    Ok(())
}

fn write_u64s(w: &mut impl Write, vals: &[u64]) -> io::Result<()> {
    for v in vals {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Write the binary pair `<prefix>_gv.bin` (vertex array: per-vertex
/// `[id, degree, nl_offset]`) and `<prefix>_nl.bin` (neighbor ids), the
/// format consumed by the UpDown applications.
pub fn write_gv_nl(prefix: &Path, g: &Csr) -> io::Result<()> {
    let gv_path = prefix.with_file_name(format!(
        "{}_gv.bin",
        prefix.file_name().unwrap().to_string_lossy()
    ));
    let nl_path = prefix.with_file_name(format!(
        "{}_nl.bin",
        prefix.file_name().unwrap().to_string_lossy()
    ));
    let mut gv = BufWriter::new(File::create(gv_path)?);
    write_u64s(&mut gv, &[GV_MAGIC, g.n() as u64, g.m()])?;
    for v in 0..g.n() {
        write_u64s(
            &mut gv,
            &[v as u64, g.degree(v) as u64, g.offsets[v as usize]],
        )?;
    }
    let mut nl = BufWriter::new(File::create(nl_path)?);
    write_u64s(&mut nl, &[NL_MAGIC, g.m()])?;
    for &d in &g.neighbors {
        nl.write_all(&(d as u64).to_le_bytes())?;
    }
    Ok(())
}

/// Read a `*_gv.bin` / `*_nl.bin` pair back into a CSR.
pub fn read_gv_nl(prefix: &Path) -> io::Result<Csr> {
    let gv_path = prefix.with_file_name(format!(
        "{}_gv.bin",
        prefix.file_name().unwrap().to_string_lossy()
    ));
    let nl_path = prefix.with_file_name(format!(
        "{}_nl.bin",
        prefix.file_name().unwrap().to_string_lossy()
    ));
    let mut gv = BufReader::new(File::open(gv_path)?);
    if read_u64(&mut gv)? != GV_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad gv magic"));
    }
    let n = read_u64(&mut gv)? as usize;
    let m = read_u64(&mut gv)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for v in 0..n {
        let id = read_u64(&mut gv)?;
        let _deg = read_u64(&mut gv)?;
        let off = read_u64(&mut gv)?;
        if id != v as u64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "gv ids not dense"));
        }
        offsets.push(off);
    }
    offsets.push(m as u64);
    let mut nl = BufReader::new(File::open(nl_path)?);
    if read_u64(&mut nl)? != NL_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad nl magic"));
    }
    let m2 = read_u64(&mut nl)? as usize;
    if m2 != m {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "gv/nl mismatch"));
    }
    let mut neighbors = Vec::with_capacity(m);
    for _ in 0..m {
        neighbors.push(read_u64(&mut nl)? as u32);
    }
    Ok(Csr { offsets, neighbors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat, RmatParams};

    #[test]
    fn edge_list_text_roundtrip() {
        let dir = std::env::temp_dir().join("updown_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("tiny.txt");
        let el = EdgeList::new(4, vec![(0, 1), (2, 3), (3, 0)]);
        write_edge_list(&p, &el).unwrap();
        let back = read_edge_list(&p, 0, true).unwrap();
        assert_eq!(back, el);
        // Undirected read doubles.
        let undirected = read_edge_list(&p, 0, false).unwrap();
        assert_eq!(undirected.m(), 6);
    }

    #[test]
    fn comment_and_offset_skipping() {
        let dir = std::env::temp_dir().join("updown_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("hdr.txt");
        std::fs::write(&p, "junk header\n# comment\n0 1\n1 2\n").unwrap();
        let el = read_edge_list(&p, 1, true).unwrap();
        assert_eq!(el.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn binary_gv_nl_roundtrip() {
        let dir = std::env::temp_dir().join("updown_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("rmat8");
        let g = Csr::from_edges(&rmat(8, RmatParams::default(), 11));
        write_gv_nl(&prefix, &g).unwrap();
        let back = read_gv_nl(&prefix).unwrap();
        assert_eq!(back, g);
    }
}
