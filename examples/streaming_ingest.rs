//! Streaming ingestion + partial match (§5.2.4): generate a synthetic
//! social-record CSV stream, parse it with TFORM over KVMSR blocks,
//! insert it into the Parallel Graph Abstraction, then stream it against
//! a registered path pattern and report match latency.
//!
//! `cargo run --release --example streaming_ingest -- [records]`

use updown_apps::ingest::{datagen, expected_graph, run_ingest, IngestConfig};
use updown_apps::partial_match::{run_partial_match, sequential_matches, PmConfig};
use updown_sim::MachineConfig;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);
    let ds = datagen::generate(n, (n / 8) as u64, 77);
    println!(
        "generated {} records ({} bytes of CSV)",
        ds.records.len(),
        ds.csv.len()
    );

    // ---- two-phase ingestion ------------------------------------------
    let mut cfg = IngestConfig::new(2);
    cfg.machine = MachineConfig::small(2, 4, 32);
    let res = run_ingest(&ds, &cfg);
    let (ev, ee) = expected_graph(&ds.records);
    assert_eq!((res.vertices, res.edges), (ev, ee), "exact graph contents");
    println!("\nUDKVMSR started                 @ tick 0");
    println!("UDKVMSR finished (parse)        @ tick {}", res.phase1_tick);
    println!("UDKVMSR started for phase2");
    println!("UDKVMSR finished for phase2     @ tick {}", res.phase2_tick);
    println!(
        "ingested {} vertices, {} edges at {:.2} MRecords/s (simulated)",
        res.vertices,
        res.edges,
        res.records_per_second(&cfg.machine) / 1e6
    );

    // ---- streaming partial match ----------------------------------------
    let pattern = vec![1u16, 2, 3];
    let mut pm = PmConfig::new(256, pattern.clone());
    pm.machine = MachineConfig::small(2, 4, 32);
    pm.batch = 64;
    pm.interval = 200;
    let r = run_partial_match(&ds.records, &pm);
    println!(
        "\npartial match (pattern 1->2->3): {} matches, mean latency {:.0} ticks ({:.2} us), p99 {} ticks",
        r.matches,
        r.mean_latency(),
        pm.machine.ticks_to_seconds(r.mean_latency() as u64) * 1e6,
        r.p99_latency()
    );
    println!(
        "(sequential-order oracle finds {} matches; streaming order may differ slightly)",
        sequential_matches(&ds.records, &pattern)
    );
}
