//! Event-protocol recording and runtime sanitizing.
//!
//! A [`ProtocolProbe`] is an optional observer attached to a run via
//! [`MachineConfig::probe`](crate::MachineConfig). It records a
//! *commutative* summary of the event protocol the program actually
//! exercised — who sent to whom, with how many operands, which handlers
//! terminate their threads, which read their continuation, which allocate
//! scratchpad — plus a deduplicated list of protocol [`Diagnostic`]s.
//! The `udcheck` analyzer (crate `crates/analysis`) turns the summary into
//! an event-flow graph and runs static checks over it.
//!
//! Recording follows the same zero-observer-effect contract as
//! [`trace`](crate::trace): it never charges cycles and never perturbs the
//! calendar sequence, so simulated results are byte-identical with a probe
//! attached or not. All recorded quantities are per-label counters, sets
//! and `min`-merges, i.e. commutative across shards — the summary is also
//! identical at every `--threads` count.
//!
//! With [`MachineConfig::sanitize`](crate::MachineConfig) set, the engine
//! additionally *tolerates* protocol violations instead of panicking —
//! sends to dead threads or unregistered labels are dropped, out-of-range
//! operand and scratchpad accesses read zero — each producing a
//! deterministic diagnostic. For a violation-free program the sanitizer
//! changes nothing: every guard only diverges on the violating path.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Cap on distinct diagnostic sites; repeats of a known site only bump its
/// count, but pathological programs could mint unbounded *distinct* sites.
const MAX_DIAG_SITES: usize = 1024;

/// What went wrong. Ordering is severity-then-kind and is the primary sort
/// key of [`ProtocolProbe::diagnostics`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiagKind {
    /// `send_event` to an event label no handler was registered for.
    SendUnregistered,
    /// Message targeted a specific thread id that is no longer live.
    SendToDeadThread,
    /// `yield_terminate` called twice within one event execution.
    DoubleTerminate,
    /// `arg(i)` / `argf(i)` past the operand count of the message.
    OperandOutOfRange,
    /// `spm_read` / `spm_write` past the configured scratchpad size.
    ScratchpadOutOfBounds,
    /// `spm_alloc` past the configured scratchpad size.
    ScratchpadExhausted,
    /// A message carried a continuation, but the receiving execution
    /// terminated its thread without ever reading it — the continuation
    /// can never be resumed.
    UnconsumedContinuation,
    /// Threads of a creating label still live when the run drained.
    ThreadLeakAtExit,
    /// Scratchpad allocated by a thread group that leaked at exit.
    ScratchpadLeakAtExit,
    /// Observed behavior deviated from the program's declared protocol
    /// spec ([`MachineConfig::enforce_spec`](crate::MachineConfig)).
    SpecViolation,
}

impl DiagKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagKind::SendUnregistered => "send-unregistered",
            DiagKind::SendToDeadThread => "send-to-dead-thread",
            DiagKind::DoubleTerminate => "double-terminate",
            DiagKind::OperandOutOfRange => "operand-out-of-range",
            DiagKind::ScratchpadOutOfBounds => "scratchpad-out-of-bounds",
            DiagKind::ScratchpadExhausted => "scratchpad-exhausted",
            DiagKind::UnconsumedContinuation => "unconsumed-continuation",
            DiagKind::ThreadLeakAtExit => "thread-leak-at-exit",
            DiagKind::ScratchpadLeakAtExit => "scratchpad-leak-at-exit",
            DiagKind::SpecViolation => "spec-violation",
        }
    }
}

/// One deduplicated protocol violation site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub kind: DiagKind,
    /// Name of the handler the violation was observed in (the creating
    /// label's handler for leak-at-exit diagnostics).
    pub handler: String,
    pub detail: String,
    /// Simulated tick of the earliest occurrence (deterministic).
    pub first_tick: u64,
    /// Global lane id of the earliest occurrence.
    pub lane: u32,
    /// Occurrences merged into this site.
    pub count: u64,
}

/// Per-edge summary: all sends observed from one handler label to another.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeRecord {
    pub count: u64,
    /// Distinct operand counts sent on this edge.
    pub argcs: BTreeSet<u32>,
    /// Sends that carried a (non-IGNORE) continuation.
    pub with_cont: u64,
    /// Sends addressed to `ThreadId::NEW` (thread-creating).
    pub to_new: u64,
}

/// Per-handler-label summary of everything its executions did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HandlerRecord {
    pub executions: u64,
    /// Executions that ended in `yield_terminate`.
    pub terminates: u64,
    /// Executions that read `ctx.cont()` at least once.
    pub cont_reads: u64,
    /// Executions whose triggering message carried a continuation.
    pub recv_with_cont: u64,
    /// Distinct operand counts of incoming messages.
    pub incoming_argcs: BTreeSet<u32>,
    /// Max operand index read via `arg`/`args`, keyed by the operand count
    /// of the triggering message (guarded handlers read different ranges
    /// under different arities, so the key matters).
    pub reads_by_argc: BTreeMap<u32, u32>,
    /// Total scratchpad words `spm_alloc`ed from this label.
    pub spm_alloc_words: u64,
    /// Outgoing sends keyed by destination label.
    pub sends: BTreeMap<u16, EdgeRecord>,
}

/// Per-thread-group summary. A group is keyed by the *creating label*: the
/// label of the message that allocated the thread context. (Grouping by
/// `ThreadType` name is useless here — the generic `udweave::event::<S>()`
/// registrar files many unrelated events under one `thread::` prefix.)
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupRecord {
    pub spawned: u64,
    pub terminated: u64,
    /// Threads of this group still live when the run drained naturally
    /// (only swept then; a `ctx.stop()`ed run legitimately leaves threads).
    pub live_at_exit: u64,
    /// Labels observed executing on threads of this group.
    pub labels: BTreeSet<u16>,
    /// Scratchpad words allocated by threads of this group.
    pub spm_alloc_words: u64,
}

/// Snapshot of everything a probe recorded, consumed by `udcheck`.
#[derive(Clone, Debug, Default)]
pub struct ProbeReport {
    /// Handler names indexed by event label (filled at end of run).
    pub handler_names: Vec<String>,
    pub handlers: BTreeMap<u16, HandlerRecord>,
    pub groups: BTreeMap<u16, GroupRecord>,
    /// Whether the run drained naturally (no `ctx.stop()`, no event-limit
    /// cut-off). Leak checks are only meaningful when true.
    pub drained: bool,
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostic *occurrences* dropped past [`MAX_DIAG_SITES`] distinct
    /// sites (repeats of a dropped site all count).
    pub suppressed: u64,
    /// Distinct diagnostic *sites* dropped by the cap — `diagnostics` is
    /// incomplete whenever this is non-zero.
    pub sites_truncated: u64,
    /// Per-lane live-thread highwater (global lane id → max live count),
    /// max-merged and thus commutative across shards.
    pub thread_highwater: BTreeMap<u32, u32>,
    /// Per-lane scratchpad-allocation highwater in words.
    pub spm_highwater: BTreeMap<u32, u32>,
}

impl ProbeReport {
    pub fn handler_name(&self, label: u16) -> &str {
        self.handler_names
            .get(label as usize)
            .map(|s| s.as_str())
            .unwrap_or("<unregistered>")
    }
}

/// Site key → (first (tick, lane), detail of that occurrence, count).
type DiagSites = BTreeMap<(DiagKind, u16, u64), ((u64, u32), String, u64)>;

#[derive(Clone, Default)]
struct Inner {
    handlers: BTreeMap<u16, HandlerRecord>,
    groups: BTreeMap<u16, GroupRecord>,
    names: Vec<String>,
    diags: DiagSites,
    suppressed: u64,
    /// Distinct site keys dropped past the cap.
    truncated: BTreeSet<(DiagKind, u16, u64)>,
    drained: bool,
    thread_hw: BTreeMap<u32, u32>,
    spm_hw: BTreeMap<u32, u32>,
    /// Spec-enforcement findings, appended once at end of run (already
    /// deterministically ordered by `spec::check_report`).
    spec: Vec<Diagnostic>,
}

/// Opaque deep copy of a probe recording at a snapshot point; restored by
/// [`ProtocolProbe::restore_state`] so a rewound engine replays into the
/// same probe contents it had at the checkpoint.
#[derive(Clone)]
pub(crate) struct ProbeState(Inner);

/// Shared handle to a protocol recording. `Clone` shares the recording:
/// keep one clone and pass another inside [`MachineConfig`](crate::MachineConfig).
#[derive(Clone, Default)]
pub struct ProtocolProbe {
    inner: Arc<Mutex<Inner>>,
}

impl fmt::Debug for ProtocolProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProtocolProbe")
    }
}

impl ProtocolProbe {
    pub fn new() -> ProtocolProbe {
        ProtocolProbe::default()
    }

    /// Deep-copy the recording for a snapshot.
    pub(crate) fn snapshot_state(&self) -> ProbeState {
        ProbeState(self.inner.lock().unwrap().clone())
    }

    /// Rewind the recording to a previously snapshotted state.
    pub(crate) fn restore_state(&self, st: &ProbeState) {
        *self.inner.lock().unwrap() = st.0.clone();
    }

    /// Record one completed event execution.
    pub(crate) fn exec(
        &self,
        label: u16,
        created_by: u16,
        argc: u32,
        has_cont: bool,
        cont_read: bool,
        terminated: bool,
    ) {
        let mut g = self.inner.lock().unwrap();
        let h = g.handlers.entry(label).or_default();
        h.executions += 1;
        h.incoming_argcs.insert(argc);
        if has_cont {
            h.recv_with_cont += 1;
        }
        if cont_read {
            h.cont_reads += 1;
        }
        if terminated {
            h.terminates += 1;
        }
        let grp = g.groups.entry(created_by).or_default();
        grp.labels.insert(label);
        if terminated {
            grp.terminated += 1;
        }
    }

    /// Record a thread-context allocation for a NEW-addressed message.
    /// `live` is the lane's live-thread count just after the allocation;
    /// each lane belongs to exactly one shard, so the per-lane max-merge
    /// is deterministic.
    pub(crate) fn spawn(&self, created_by: u16, lane: u32, live: u32) {
        let mut g = self.inner.lock().unwrap();
        g.groups.entry(created_by).or_default().spawned += 1;
        let hw = g.thread_hw.entry(lane).or_insert(0);
        *hw = (*hw).max(live);
    }

    /// Record one `send_event` (host sends are not recorded: the graph
    /// covers device-side protocol only).
    pub(crate) fn send(&self, src: u16, dst: u16, argc: u32, has_cont: bool, to_new: bool) {
        let mut g = self.inner.lock().unwrap();
        let e = g
            .handlers
            .entry(src)
            .or_default()
            .sends
            .entry(dst)
            .or_default();
        e.count += 1;
        e.argcs.insert(argc);
        if has_cont {
            e.with_cont += 1;
        }
        if to_new {
            e.to_new += 1;
        }
    }

    /// Record an operand read at index `idx` under a message of `argc`
    /// operands.
    pub(crate) fn arg_read(&self, label: u16, argc: u32, idx: u32) {
        let mut g = self.inner.lock().unwrap();
        let h = g.handlers.entry(label).or_default();
        let m = h.reads_by_argc.entry(argc).or_insert(0);
        *m = (*m).max(idx);
    }

    /// Record a scratchpad allocation. `brk` is the lane's allocation
    /// break just after the grant (per-lane highwater, deterministic for
    /// the same reason as [`ProtocolProbe::spawn`]).
    pub(crate) fn spm_alloc_rec(&self, label: u16, created_by: u16, words: u32, lane: u32, brk: u32) {
        let mut g = self.inner.lock().unwrap();
        g.handlers.entry(label).or_default().spm_alloc_words += words as u64;
        g.groups.entry(created_by).or_default().spm_alloc_words += words as u64;
        let hw = g.spm_hw.entry(lane).or_insert(0);
        *hw = (*hw).max(brk);
    }

    /// Record (or merge into) a diagnostic site. `aux` disambiguates sites
    /// within one (kind, label) — e.g. the destination label or offset.
    /// `detail` is only rendered for the earliest occurrence of a site, so
    /// callers may format freely without a hot-path cost for repeats.
    pub(crate) fn diag(
        &self,
        kind: DiagKind,
        label: u16,
        aux: u64,
        tick: u64,
        lane: u32,
        detail: impl FnOnce() -> String,
    ) {
        let mut g = self.inner.lock().unwrap();
        let key = (kind, label, aux);
        if let Some((first, d, count)) = g.diags.get_mut(&key) {
            *count += 1;
            if (tick, lane) < *first {
                *first = (tick, lane);
                *d = detail();
            }
            return;
        }
        if g.diags.len() >= MAX_DIAG_SITES {
            g.suppressed += 1;
            g.truncated.insert(key);
            return;
        }
        g.diags.insert(key, ((tick, lane), detail(), 1));
    }

    /// Record one thread still live when the run drained.
    pub(crate) fn live_at_exit(&self, created_by: u16) {
        self.inner
            .lock()
            .unwrap()
            .groups
            .entry(created_by)
            .or_default()
            .live_at_exit += 1;
    }

    /// Called by the engine at end of run: install handler names, note how
    /// the run ended, and — when it drained naturally — derive the
    /// leak-at-exit diagnostics from the group summaries.
    pub(crate) fn finish_run(&self, names: Vec<String>, drained: bool, final_tick: u64) {
        {
            let mut g = self.inner.lock().unwrap();
            g.names = names;
            g.drained = drained;
        }
        if !drained {
            return;
        }
        // Leak diagnostics (outside the lock held above; `diag` re-locks).
        let groups: Vec<(u16, u64, u64)> = {
            let g = self.inner.lock().unwrap();
            g.groups
                .iter()
                .filter(|(_, r)| r.live_at_exit > 0)
                .map(|(&l, r)| (l, r.live_at_exit, r.spm_alloc_words))
                .collect()
        };
        for (label, live, spm_words) in groups {
            self.diag(DiagKind::ThreadLeakAtExit, label, live, final_tick, 0, || {
                format!("{live} thread(s) of this group still live after the run drained")
            });
            if spm_words > 0 {
                self.diag(
                    DiagKind::ScratchpadLeakAtExit,
                    label,
                    spm_words,
                    final_tick,
                    0,
                    || {
                        format!(
                            "{spm_words} scratchpad word(s) allocated by a thread group \
                             that never fully terminated"
                        )
                    },
                );
            }
        }
        // Repeated runs of one engine would double-count the sweep; the
        // udcheck flow is one run per probe, so merged counts stay exact.
    }

    /// Record one spec-enforcement finding (end of run; callers pass an
    /// already-sorted batch so ordering stays deterministic).
    pub(crate) fn spec_violation(&self, handler: String, detail: String, tick: u64) {
        self.inner.lock().unwrap().spec.push(Diagnostic {
            kind: DiagKind::SpecViolation,
            handler,
            detail,
            first_tick: tick,
            lane: 0,
            count: 1,
        });
    }

    /// Per-lane live-thread and scratchpad highwaters (lane → max).
    pub fn highwaters(&self) -> (BTreeMap<u32, u32>, BTreeMap<u32, u32>) {
        let g = self.inner.lock().unwrap();
        (g.thread_hw.clone(), g.spm_hw.clone())
    }

    /// All diagnostics, deterministically ordered by (kind, label, site)
    /// and identical at every thread count.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let g = self.inner.lock().unwrap();
        g.diags
            .iter()
            .map(|(&(kind, label, _aux), &((tick, lane), ref detail, count))| Diagnostic {
                kind,
                handler: g
                    .names
                    .get(label as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("<label {label}>")),
                detail: detail.clone(),
                first_tick: tick,
                lane,
                count,
            })
            .chain(g.spec.iter().cloned())
            .collect()
    }

    /// Full snapshot for the `udcheck` analyzer.
    pub fn snapshot(&self) -> ProbeReport {
        let diags = self.diagnostics();
        let g = self.inner.lock().unwrap();
        ProbeReport {
            handler_names: g.names.clone(),
            handlers: g.handlers.clone(),
            groups: g.groups.clone(),
            drained: g.drained,
            diagnostics: diags,
            suppressed: g.suppressed,
            sites_truncated: g.truncated.len() as u64,
            thread_highwater: g.thread_hw.clone(),
            spm_highwater: g.spm_hw.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_sites_merge_and_keep_earliest() {
        let p = ProtocolProbe::new();
        p.diag(DiagKind::DoubleTerminate, 3, 0, 50, 2, || "late".into());
        p.diag(DiagKind::DoubleTerminate, 3, 0, 10, 7, || "early".into());
        p.diag(DiagKind::DoubleTerminate, 3, 0, 99, 1, || "later".into());
        let d = p.diagnostics();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].count, 3);
        assert_eq!(d[0].first_tick, 10);
        assert_eq!(d[0].lane, 7);
        assert_eq!(d[0].detail, "early");
    }

    #[test]
    fn distinct_aux_makes_distinct_sites() {
        let p = ProtocolProbe::new();
        p.diag(DiagKind::SendUnregistered, 1, 100, 5, 0, || "a".into());
        p.diag(DiagKind::SendUnregistered, 1, 200, 5, 0, || "b".into());
        assert_eq!(p.diagnostics().len(), 2);
    }

    #[test]
    fn site_cap_suppresses_overflow() {
        let p = ProtocolProbe::new();
        for i in 0..(MAX_DIAG_SITES as u64 + 10) {
            p.diag(DiagKind::OperandOutOfRange, 0, i, 1, 0, String::new);
        }
        let r = p.snapshot();
        assert_eq!(r.diagnostics.len(), MAX_DIAG_SITES);
        assert_eq!(r.suppressed, 10);
        assert_eq!(r.sites_truncated, 10);
    }

    #[test]
    fn truncated_counts_distinct_sites_not_occurrences() {
        let p = ProtocolProbe::new();
        for i in 0..(MAX_DIAG_SITES as u64 + 2) {
            p.diag(DiagKind::OperandOutOfRange, 0, i, 1, 0, String::new);
        }
        // Repeat the two dropped sites: occurrences grow, sites do not.
        for _ in 0..3 {
            p.diag(DiagKind::OperandOutOfRange, 0, MAX_DIAG_SITES as u64, 1, 0, String::new);
            p.diag(DiagKind::OperandOutOfRange, 0, MAX_DIAG_SITES as u64 + 1, 1, 0, String::new);
        }
        let r = p.snapshot();
        assert_eq!(r.suppressed, 8, "2 first drops + 6 repeats");
        assert_eq!(r.sites_truncated, 2);
        // A repeat of a *kept* site still merges normally.
        p.diag(DiagKind::OperandOutOfRange, 0, 0, 1, 0, String::new);
        assert_eq!(p.snapshot().sites_truncated, 2);
    }

    #[test]
    fn leak_sweep_only_on_drained_runs() {
        let p = ProtocolProbe::new();
        p.spawn(4, 0, 1);
        p.spm_alloc_rec(4, 4, 16, 0, 16);
        p.live_at_exit(4);
        p.finish_run(vec!["a".into(); 5], false, 1000);
        assert!(p.diagnostics().is_empty(), "stopped run: no leak sweep");

        let p = ProtocolProbe::new();
        p.spawn(4, 0, 1);
        p.spm_alloc_rec(4, 4, 16, 0, 16);
        p.live_at_exit(4);
        p.finish_run(vec!["a".into(); 5], true, 1000);
        let kinds: Vec<DiagKind> = p.diagnostics().iter().map(|d| d.kind).collect();
        assert_eq!(
            kinds,
            vec![DiagKind::ThreadLeakAtExit, DiagKind::ScratchpadLeakAtExit]
        );
    }

    #[test]
    fn summaries_are_commutative() {
        // Two interleavings of the same records produce identical reports.
        type Op = Box<dyn Fn(&ProtocolProbe)>;
        let mk = |order: &[usize]| {
            let p = ProtocolProbe::new();
            let ops: Vec<Op> = vec![
                Box::new(|p| p.exec(1, 1, 2, true, true, false)),
                Box::new(|p| p.exec(1, 1, 3, false, false, true)),
                Box::new(|p| p.send(1, 2, 2, false, true)),
                Box::new(|p| p.arg_read(1, 2, 1)),
                Box::new(|p| p.spawn(1, 0, 1)),
            ];
            for &i in order {
                ops[i](&p);
            }
            p.finish_run(vec!["x".into(); 3], false, 0);
            p.snapshot()
        };
        let a = mk(&[0, 1, 2, 3, 4]);
        let b = mk(&[4, 3, 2, 1, 0]);
        assert_eq!(a.handlers, b.handlers);
        assert_eq!(a.groups, b.groups);
    }
}
