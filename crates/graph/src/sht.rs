//! The Scalable Hash Table (SHT) — Table 5's largest data abstraction
//! (4,764 LoC of UDWeave in the paper). Buckets are sharded across a lane
//! set by key hash; each lane owns a contiguous run of buckets stored in a
//! DRAMmalloc region. Operations are messages to the owning lane, which
//! serializes them (events are atomic), reads the bucket from DRAM, and
//! replies to the caller's continuation.
//!
//! Bucket layout in the region, per bucket: `[len, (key, value) × epb]`.
//!
//! Simplification vs. the paper: no overflow chaining — `entries_per_bucket`
//! must be sized for the load (the artifact's configuration files expose
//! exactly these knobs: `VERTEX_EB`, `EDGE_EB`, `VERTEX_BL`, `EDGE_BL`).

use std::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

use drammalloc::{Layout, Region};
use kvmsr::key_hash;
use udweave::LaneSet;
use updown_sim::{Engine, EventCtx, EventLabel, EventWord, NetworkId, VAddr};

/// Handle to one created table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShtId(pub u32);

/// Operation kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShtOp {
    /// Reply `[found, value]`.
    Get = 0,
    /// Insert if absent. Reply `[existed, old_or_new_value]`.
    PutIfAbsent = 1,
    /// Overwrite (insert if absent). Reply `[existed, old_value]`.
    Put = 2,
    /// `value |= v` (insert v if absent). Reply `[existed, old_value]`.
    FetchOr = 3,
}

impl ShtOp {
    fn from_u64(x: u64) -> ShtOp {
        match x {
            0 => ShtOp::Get,
            1 => ShtOp::PutIfAbsent,
            2 => ShtOp::Put,
            3 => ShtOp::FetchOr,
            _ => panic!("bad SHT op {x}"),
        }
    }
}

struct ShtDef {
    set: LaneSet,
    buckets_per_lane: u32,
    entries_per_bucket: u32,
    region: Region,
    /// Functional contents + slot assignment (the DRAM image is written
    /// through and checked against this in tests).
    shadow: BTreeMap<u64, (u64, u64)>, // key -> (slot word index, value)
    lens: BTreeMap<u64, u32>,         // bucket -> occupancy
    max_bucket: u32,
}

impl ShtDef {
    #[inline]
    fn total_buckets(&self) -> u64 {
        self.set.count as u64 * self.buckets_per_lane as u64
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> u64 {
        key_hash(key) % self.total_buckets()
    }

    #[inline]
    fn owner(&self, key: u64) -> NetworkId {
        self.set
            .lane((self.bucket_of(key) / self.buckets_per_lane as u64) as u32)
    }

    /// Word index of bucket `b`'s header within the region.
    #[inline]
    fn bucket_base(&self, b: u64) -> u64 {
        b * (1 + 2 * self.entries_per_bucket as u64)
    }
}

#[derive(Default)]
struct Inner {
    tables: Vec<ShtDef>,
}

/// `race_order` token space for SHT bucket operations: every op for a
/// key routes to the owning lane and applies against the host-side
/// shadow under a `Mutex`, a lane-serialized exchange the race probe
/// cannot see. Both `sht::op` and `sht::op_fin` order on
/// `RACE_TOKEN_SH | sht_id` ("SH" in the high bytes); see
/// docs/udrace.md.
const RACE_TOKEN_SH: u64 = 0x5348_0000_0000_0000;

/// The installed SHT library (shared handlers for all tables).
#[derive(Clone)]
pub struct ShtLib {
    inner: Arc<Mutex<Inner>>,
    op_label: EventLabel,
}

#[derive(Default, Clone, Copy)]
struct Pending {
    sht: u32,
    op: u64,
    key: u64,
    value: u64,
    reply_raw: u64,
}

updown_sim::snap_state!(Pending, "sht.pending", { sht, op, key, value, reply_raw });

impl ShtLib {
    pub fn install(eng: &mut Engine) -> ShtLib {
        let inner: Arc<Mutex<Inner>> = Arc::default();
        eng.register_state_codec::<Pending>();
        // The functional table contents live host-side (the DRAM image is
        // written through); rewinds must carry them or a replayed op sees
        // end-of-run occupancy (docs/checkpoint.md).
        {
            let a = inner.clone();
            let b = inner.clone();
            eng.register_host_state(
                move || {
                    let inn = a.lock().unwrap();
                    inn.tables
                        .iter()
                        .map(|t| (t.shadow.clone(), t.lens.clone(), t.max_bucket))
                        .collect::<Vec<_>>()
                },
                move |saved| {
                    let mut inn = b.lock().unwrap();
                    assert_eq!(
                        inn.tables.len(),
                        saved.len(),
                        "SHT restore: table count changed since the snapshot"
                    );
                    for (t, (shadow, lens, max_bucket)) in inn.tables.iter_mut().zip(saved) {
                        t.shadow = shadow.clone();
                        t.lens = lens.clone();
                        t.max_bucket = *max_bucket;
                    }
                },
            );
        }

        // Second event of the op thread: the bucket line has arrived from
        // DRAM; apply the operation and reply.
        let fin = {
            let inner = inner.clone();
            udweave::event::<Pending>(eng, "sht::op_fin", move |ctx, st| {
                ctx.race_order(RACE_TOKEN_SH | st.sht as u64);
                let mut inn = inner.lock().unwrap();
                let t = &mut inn.tables[st.sht as usize];
                let op = ShtOp::from_u64(st.op);
                let b = t.bucket_of(st.key);
                let existing = t.shadow.get(&st.key).copied();
                // Cost: compare scanned keys (charged per entry present).
                let blen = t.lens.get(&b).copied().unwrap_or(0);
                ctx.charge(2 * blen as u64 + 2);
                let mut write: Option<(u64, [u64; 2])> = None; // slot word -> words
                let reply: [u64; 2];
                match op {
                    ShtOp::Get => {
                        reply = match existing {
                            Some((_, v)) => [1, v],
                            None => [0, 0],
                        };
                    }
                    ShtOp::PutIfAbsent | ShtOp::Put | ShtOp::FetchOr => {
                        match existing {
                            Some((slot, old)) => {
                                let newv = match op {
                                    ShtOp::PutIfAbsent => old,
                                    ShtOp::Put => st.value,
                                    ShtOp::FetchOr => old | st.value,
                                    ShtOp::Get => unreachable!(),
                                };
                                if newv != old {
                                    t.shadow.insert(st.key, (slot, newv));
                                    write = Some((slot, [st.key, newv]));
                                }
                                reply = [1, old];
                            }
                            None => {
                                let epb = t.entries_per_bucket;
                                let base = t.bucket_base(b);
                                let len = t.lens.entry(b).or_insert(0);
                                assert!(
                                    *len < epb,
                                    "SHT bucket {b} overflow (epb = {epb}); size the table up"
                                );
                                let slot = base + 1 + 2 * *len as u64;
                                *len += 1;
                                let mb = *len;
                                t.max_bucket = t.max_bucket.max(mb);
                                t.shadow.insert(st.key, (slot, st.value));
                                write = Some((slot, [st.key, st.value]));
                                reply = [0, st.value];
                            }
                        }
                    }
                }
                let region = t.region;
                let hdr = t.bucket_base(b);
                let new_len = t.lens.get(&b).copied().unwrap_or(0) as u64;
                drop(inn);
                if let Some((slot, words)) = write {
                    ctx.send_dram_write(region.word(slot), &words, None);
                    // Keep the DRAM header in sync (plain write: this lane
                    // is the only writer of its buckets).
                    ctx.send_dram_write(region.word(hdr), &[new_len], None);
                }
                let reply_to = EventWord::from_raw(st.reply_raw);
                if !reply_to.is_ignore() {
                    ctx.send_event(reply_to, reply, EventWord::IGNORE);
                }
                ctx.yield_terminate();
            })
        };

        // First event: record the request and fetch the bucket line.
        let op_label = {
            let inner = inner.clone();
            udweave::event::<Pending>(eng, "sht::op", move |ctx, st| {
                *st = Pending {
                    sht: ctx.arg(0) as u32,
                    op: ctx.arg(1),
                    key: ctx.arg(2),
                    value: ctx.arg(3),
                    reply_raw: ctx.cont().raw(),
                };
                ctx.race_order(RACE_TOKEN_SH | st.sht as u64);
                let (va, words) = {
                    let inn = inner.lock().unwrap();
                    let t = &inn.tables[st.sht as usize];
                    let b = t.bucket_of(st.key);
                    let blen = t.lens.get(&b).copied().unwrap_or(0);
                    // Header + up to the first 3 entries in one access.
                    let words = (1 + 2 * blen.min(3) as usize).min(8);
                    (t.region.word(t.bucket_base(b)), words)
                };
                ctx.send_dram_read(va, words, fin);
            })
        };

        ShtLib { inner, op_label }
    }

    /// Declare the SHT op/op_fin protocol into a udspec
    /// [`udweave::ProgramSpec`] (docs/udspec.md). Callers declare their
    /// own `send("thread::sht::op")` edges; the op thread's live bound is
    /// derived from those edges.
    pub fn spec_decl(spec: &mut udweave::ProgramSpec) {
        let t = spec.thread("thread::sht");
        t.event("op").args(4, 4).resumes("thread::sht::op_fin");
        t.event("op_fin")
            .args(1, 8)
            .on("thread::sht::op")
            .replies()
            .terminates();
    }

    /// Create a table over `set` with `buckets_per_lane` × `epb` capacity
    /// per lane, backed by a region with the given layout.
    pub fn create(
        &self,
        eng: &mut Engine,
        set: LaneSet,
        buckets_per_lane: u32,
        entries_per_bucket: u32,
        layout: Layout,
    ) -> ShtId {
        let words =
            set.count as u64 * buckets_per_lane as u64 * (1 + 2 * entries_per_bucket as u64);
        let region = Region::alloc_words(eng, words, layout).expect("SHT region");
        let mut inner = self.inner.lock().unwrap();
        let id = ShtId(inner.tables.len() as u32);
        inner.tables.push(ShtDef {
            set,
            buckets_per_lane,
            entries_per_bucket,
            region,
            shadow: BTreeMap::new(),
            lens: BTreeMap::new(),
            max_bucket: 0,
        });
        id
    }

    /// Issue an operation from inside an event; the reply goes to `cont`
    /// (`[found/existed, value]`), or nowhere for `IGNORE`.
    pub fn op(
        &self,
        ctx: &mut EventCtx<'_>,
        sht: ShtId,
        op: ShtOp,
        key: u64,
        value: u64,
        cont: EventWord,
    ) {
        let owner = self.inner.lock().unwrap().tables[sht.0 as usize].owner(key);
        let w = EventWord::new(owner, self.op_label);
        ctx.send_event(w, [sht.0 as u64, op as u64, key, value], cont);
    }

    pub fn get(&self, ctx: &mut EventCtx<'_>, sht: ShtId, key: u64, cont: EventWord) {
        self.op(ctx, sht, ShtOp::Get, key, 0, cont);
    }

    pub fn insert(&self, ctx: &mut EventCtx<'_>, sht: ShtId, key: u64, value: u64, cont: EventWord) {
        self.op(ctx, sht, ShtOp::PutIfAbsent, key, value, cont);
    }

    pub fn put(&self, ctx: &mut EventCtx<'_>, sht: ShtId, key: u64, value: u64, cont: EventWord) {
        self.op(ctx, sht, ShtOp::Put, key, value, cont);
    }

    pub fn fetch_or(
        &self,
        ctx: &mut EventCtx<'_>,
        sht: ShtId,
        key: u64,
        bits: u64,
        cont: EventWord,
    ) {
        self.op(ctx, sht, ShtOp::FetchOr, key, bits, cont);
    }

    // ---- host-side inspection -------------------------------------------

    pub fn host_get(&self, sht: ShtId, key: u64) -> Option<u64> {
        self.inner.lock().unwrap().tables[sht.0 as usize]
            .shadow
            .get(&key)
            .map(|&(_, v)| v)
    }

    pub fn len(&self, sht: ShtId) -> usize {
        self.inner.lock().unwrap().tables[sht.0 as usize].shadow.len()
    }

    pub fn max_bucket_occupancy(&self, sht: ShtId) -> u32 {
        self.inner.lock().unwrap().tables[sht.0 as usize].max_bucket
    }

    /// Rebuild the table's contents from the DRAM image (ignores the
    /// shadow): used to verify the device-resident data is complete.
    pub fn dump_from_dram(&self, mem: &updown_sim::GlobalMemory, sht: ShtId) -> BTreeMap<u64, u64> {
        let inner = self.inner.lock().unwrap();
        let t = &inner.tables[sht.0 as usize];
        let mut out = BTreeMap::new();
        for b in 0..t.total_buckets() {
            let base = t.bucket_base(b);
            let len = mem.read_u64(t.region.word(base)).unwrap();
            for i in 0..len {
                let k = mem.read_u64(t.region.word(base + 1 + 2 * i)).unwrap();
                let v = mem.read_u64(t.region.word(base + 2 + 2 * i)).unwrap();
                out.insert(k, v);
            }
        }
        out
    }

    /// Owner lane of a key (for co-locating follow-up work).
    pub fn owner(&self, sht: ShtId, key: u64) -> NetworkId {
        self.inner.lock().unwrap().tables[sht.0 as usize].owner(key)
    }

    /// The backing region base (diagnostics).
    pub fn region_base(&self, sht: ShtId) -> VAddr {
        self.inner.lock().unwrap().tables[sht.0 as usize].region.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as StdMap;
    use udweave::simple_event;
    use updown_sim::MachineConfig;

    fn setup(nodes: u32) -> (Engine, ShtLib, ShtId) {
        let mut eng = Engine::new(MachineConfig::small(nodes, 1, 4));
        let lib = ShtLib::install(&mut eng);
        let set = LaneSet::new(NetworkId(0), eng.config().total_lanes());
        let sht = lib.create(&mut eng, set, 16, 8, Layout::cyclic(nodes));
        (eng, lib, sht)
    }

    #[test]
    fn insert_get_roundtrip() {
        let (mut eng, lib, sht) = setup(1);
        let got: Arc<Mutex<Vec<(u64, u64)>>> = Arc::default();
        let got2 = got.clone();
        let on_get = simple_event(&mut eng, "on_get", move |ctx| {
            got2.lock().unwrap().push((ctx.arg(0), ctx.arg(1)));
            ctx.yield_terminate();
        });
        let lib2 = lib.clone();
        let go = simple_event(&mut eng, "go", move |ctx| {
            lib2.insert(ctx, sht, 42, 777, EventWord::IGNORE);
            lib2.insert(ctx, sht, 43, 888, EventWord::IGNORE);
            // Get after inserts (message ordering to the same lane is
            // FIFO-ish here because all ops serialize on owner lanes, but
            // use a delay to be deterministic about arrival order).
            ctx.send_event_after(
                5000,
                EventWord::new(ctx.nwid(), on_get),
                [0u64, 0],
                EventWord::IGNORE,
            );
            ctx.yield_terminate();
        });
        let lib3 = lib.clone();
        // Rebind: the delayed event does the gets.
        let _ = go;
        let do_gets = simple_event(&mut eng, "do_gets", move |ctx| {
            let cont = EventWord::new(ctx.nwid(), on_get);
            lib3.get(ctx, sht, 42, cont);
            lib3.get(ctx, sht, 99, cont);
            ctx.yield_terminate();
        });
        let lib4 = lib.clone();
        let go2 = simple_event(&mut eng, "go2", move |ctx| {
            lib4.insert(ctx, sht, 42, 777, EventWord::IGNORE);
            lib4.insert(ctx, sht, 43, 888, EventWord::IGNORE);
            ctx.send_event_after(5000, EventWord::new(ctx.nwid(), do_gets), [], EventWord::IGNORE);
            ctx.yield_terminate();
        });
        eng.send(EventWord::new(NetworkId(0), go2), [], EventWord::IGNORE);
        eng.run();
        let mut res = got.lock().unwrap().clone();
        res.sort_unstable();
        assert_eq!(res, vec![(0, 0), (1, 777)]);
        assert_eq!(lib.host_get(sht, 43), Some(888));
        assert_eq!(lib.len(sht), 2);
    }

    #[test]
    fn put_if_absent_keeps_first() {
        let (mut eng, lib, sht) = setup(1);
        let lib2 = lib.clone();
        let go = simple_event(&mut eng, "go", move |ctx| {
            lib2.insert(ctx, sht, 7, 1, EventWord::IGNORE);
            lib2.insert(ctx, sht, 7, 2, EventWord::IGNORE);
            ctx.yield_terminate();
        });
        eng.send(EventWord::new(NetworkId(0), go), [], EventWord::IGNORE);
        eng.run();
        assert_eq!(lib.host_get(sht, 7), Some(1));
    }

    #[test]
    fn put_overwrites_and_fetch_or_merges() {
        let (mut eng, lib, sht) = setup(1);
        let lib2 = lib.clone();
        let phase2 = {
            let lib = lib.clone();
            simple_event(&mut eng, "phase2", move |ctx| {
                lib.put(ctx, sht, 7, 5, EventWord::IGNORE);
                lib.fetch_or(ctx, sht, 8, 0b10, EventWord::IGNORE);
                ctx.yield_terminate();
            })
        };
        let go = simple_event(&mut eng, "go", move |ctx| {
            lib2.put(ctx, sht, 7, 1, EventWord::IGNORE);
            lib2.fetch_or(ctx, sht, 8, 0b01, EventWord::IGNORE);
            ctx.send_event_after(5000, EventWord::new(ctx.nwid(), phase2), [], EventWord::IGNORE);
            ctx.yield_terminate();
        });
        eng.send(EventWord::new(NetworkId(0), go), [], EventWord::IGNORE);
        eng.run();
        assert_eq!(lib.host_get(sht, 7), Some(5));
        assert_eq!(lib.host_get(sht, 8), Some(0b11));
    }

    #[test]
    fn dram_image_matches_shadow() {
        let (mut eng, lib, sht) = setup(2);
        let lib2 = lib.clone();
        let go = simple_event(&mut eng, "go", move |ctx| {
            for k in 0..200u64 {
                lib2.insert(ctx, sht, k * 31 + 1, k, EventWord::IGNORE);
            }
            ctx.yield_terminate();
        });
        eng.send(EventWord::new(NetworkId(0), go), [], EventWord::IGNORE);
        eng.run();
        let dram = lib.dump_from_dram(eng.mem(), sht);
        let expect: StdMap<u64, u64> = (0..200u64).map(|k| (k * 31 + 1, k)).collect();
        assert_eq!(dram, expect);
        assert!(lib.max_bucket_occupancy(sht) <= 8);
    }

    #[test]
    fn concurrent_inserts_from_many_lanes() {
        let (mut eng, lib, sht) = setup(2);
        let lib2 = lib.clone();
        let worker = simple_event(&mut eng, "worker", move |ctx| {
            let base = ctx.arg(0);
            for k in 0..50u64 {
                lib2.insert(ctx, sht, base * 1000 + k, base, EventWord::IGNORE);
            }
            ctx.yield_terminate();
        });
        let kick = simple_event(&mut eng, "kick", move |ctx| {
            for l in 0..8u32 {
                ctx.send_event(EventWord::new(NetworkId(l), worker), [l as u64], EventWord::IGNORE);
            }
            ctx.yield_terminate();
        });
        eng.send(EventWord::new(NetworkId(0), kick), [], EventWord::IGNORE);
        eng.run();
        assert_eq!(lib.len(sht), 400);
        let dram = lib.dump_from_dram(eng.mem(), sht);
        assert_eq!(dram.len(), 400);
    }
}
