//! Figure 9 (+ raw-data Tables 8/9/10): strong-scaling of PageRank, BFS,
//! and Triangle Counting across node counts and graphs.
//!
//! ```text
//! cargo run --release -p bench --bin figure9 -- [pr|bfs|tc|all]
//!     [--max-nodes 32] [--scale-shift 0] [--iters 2] [--full]
//! ```
//!
//! `--full` raises the sweep to 256 nodes (TC: 1024) and the graphs by two
//! scales — closer to the paper, at many minutes of host time.

use bench::{bench_machine, graph_menu, node_sweep, prepared, prepared_undirected, Cli};
use updown_apps::bfs::{run_bfs, BfsConfig};
use updown_apps::harness::{print_speedup_table, Series};
use updown_apps::pagerank::{run_pagerank, PrConfig};
use updown_apps::tc::{run_tc, TcConfig};

fn pr_sweep(shift: i32, nodes: &[u32], iters: u32) -> Vec<Series> {
    let mut out = Vec::new();
    for (name, el) in graph_menu(shift) {
        let (sh, _) = updown_graph::preprocess::shuffle_ids(&el, 7);
        let sg = updown_graph::preprocess::split_in_out(&updown_graph::Csr::from_edges(&sh), 512);
        let mut s = Series::new(&name);
        for &n in nodes {
            let mut cfg = PrConfig::new(n);
            cfg.machine = bench_machine(n);
            cfg.iterations = iters;
            let r = run_pagerank(&sg, &cfg);
            eprintln!(
                "  pr {name} nodes={n}: {} ticks ({:.2} GUPS)",
                r.final_tick,
                r.gups(&cfg.machine)
            );
            s.push(n, r.final_tick);
        }
        out.push(s);
    }
    out
}

fn bfs_sweep(shift: i32, nodes: &[u32]) -> Vec<Series> {
    let mut out = Vec::new();
    for (name, el) in graph_menu(shift) {
        let g = prepared(&el.clone().symmetrize());
        let mut s = Series::new(&name);
        for &n in nodes {
            let mut cfg = BfsConfig::new(n, 0);
            cfg.machine = bench_machine(n);
            let r = run_bfs(&g, &cfg);
            eprintln!(
                "  bfs {name} nodes={n}: {} ticks, {} rounds, {:.2} GTEPS",
                r.final_tick,
                r.rounds,
                r.gteps(&cfg.machine)
            );
            s.push(n, r.final_tick);
        }
        out.push(s);
    }
    out
}

fn tc_sweep(shift: i32, nodes: &[u32]) -> Vec<Series> {
    let mut out = Vec::new();
    // TC is intersection-heavy: drop the graphs three scales relative to
    // PR/BFS (the paper similarly uses s25 for TC vs s28 elsewhere).
    for (name, el) in graph_menu(shift - 3) {
        let g = prepared_undirected(&el);
        let mut s = Series::new(&name);
        let mut triangles = None;
        for &n in nodes {
            let mut cfg = TcConfig::new(n);
            cfg.machine = bench_machine(n);
            let r = run_tc(&g, &cfg);
            match triangles {
                None => triangles = Some(r.triangles),
                Some(t) => assert_eq!(t, r.triangles, "count must not depend on machine"),
            }
            eprintln!(
                "  tc {name} nodes={n}: {} ticks ({} triangles)",
                r.final_tick, r.triangles
            );
            s.push(n, r.final_tick);
        }
        out.push(s);
    }
    out
}

fn main() {
    let cli = Cli::parse();
    let which = cli
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".into());
    let full = cli.has("full");
    let shift: i32 = cli.get("scale-shift", if full { 3 } else { 1 });
    let max_nodes: u32 = cli.get("max-nodes", if full { 256 } else { 32 });
    let iters: u32 = cli.get("iters", 2);
    let nodes = node_sweep(max_nodes);

    println!("Figure 9 reproduction — strong scaling on the UpDown simulator");
    println!(
        "machine: {} accels x {} lanes per node; sweep {:?}",
        bench::BENCH_ACCELS,
        bench::BENCH_LANES,
        nodes
    );

    if which == "pr" || which == "all" {
        let series = pr_sweep(shift, &nodes, iters);
        print_speedup_table(
            "Figure 9 (left) / Table 8: PageRank speedup",
            "nodes",
            &series,
        );
    }
    if which == "bfs" || which == "all" {
        let series = bfs_sweep(shift, &nodes);
        print_speedup_table(
            "Figure 9 (center) / Table 9: BFS speedup",
            "nodes",
            &series,
        );
    }
    if which == "tc" || which == "all" {
        let tc_nodes = node_sweep(if full { 1024 } else { max_nodes });
        let series = tc_sweep(shift, &tc_nodes);
        print_speedup_table(
            "Figure 9 (right) / Table 10: TC speedup",
            "nodes",
            &series,
        );
    }
}
