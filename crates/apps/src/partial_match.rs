//! Partial Match (§5.2.4, Figure 11): records stream in over time, are
//! inserted into the graph, and are incrementally matched against a
//! registered pattern; the metric is *latency* from record arrival to
//! match-processing completion.
//!
//! The pattern is a typed edge path `[t0, t1, ..., t_{L-1}]`. A scalable
//! hash table keyed by vertex holds a bitmask of matched prefix lengths
//! ending at that vertex (bit `i` ⇒ a path matching `t0..t_{i-1}` ends
//! here; bit 0 — the empty prefix — is implicit at every vertex). When
//! edge `(s, d, t)` arrives: any prefix `i` at `s` with `t_i = t` extends
//! to prefix `i+1` at `d`; reaching bit `L` is a full match.
//!
//! Matching is incremental and non-retroactive (a new edge does not
//! re-propagate existing state through older edges) — the streaming
//! partial-match semantics, not an offline subgraph enumeration.

use std::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use drammalloc::{Layout, Region};
use udweave::LaneSet;
use updown_graph::{Pga, ShtLib};
use updown_sim::{Engine, EventWord, MachineConfig, NetworkId, Metrics};

use crate::ingest::tform::RawRecord;

#[derive(Clone, Debug)]
pub struct PmConfig {
    pub machine: MachineConfig,
    /// Lanes used for processing + state tables ("1/8 node" = 256 lanes).
    pub lanes: u32,
    /// The typed-edge path pattern.
    pub pattern: Vec<u16>,
    /// Records injected per arrival batch, and the inter-batch gap.
    pub batch: usize,
    pub interval: u64,
    /// Parallel network-ingress threads (records arrive at several ports).
    pub feeders: u32,
    /// Credit-based flow control: max records in flight per lane (ingress
    /// backpressure; prevents thread-context exhaustion under overload —
    /// queueing then happens at the port and still counts toward latency).
    pub inflight_per_lane: u32,
    pub vertex_bl: u32,
    pub vertex_eb: u32,
    /// Record an event trace; the result carries the Chrome-trace JSON.
    pub trace: bool,
}

impl PmConfig {
    pub fn new(lanes: u32, pattern: Vec<u16>) -> PmConfig {
        PmConfig {
            machine: MachineConfig::with_nodes(
                (lanes.div_ceil(2048)).next_power_of_two().max(1),
            ),
            lanes,
            pattern,
            batch: 16,
            interval: 3000,
            feeders: 8,
            inflight_per_lane: 96,
            vertex_bl: 128,
            vertex_eb: 16,
            trace: false,
        }
    }
}

pub struct PmResult {
    pub matches: u64,
    /// Per-record latency in ticks (arrival -> processing complete).
    pub latencies: Vec<u64>,
    pub final_tick: u64,
    pub report: Metrics,
    /// Chrome-trace JSON, present when the config asked for a trace.
    pub trace_json: Option<String>,
}

impl PmResult {
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64
    }

    pub fn p99_latency(&self) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let mut v = self.latencies.clone();
        v.sort_unstable();
        v[(v.len() - 1) * 99 / 100]
    }
}

/// Host oracle: sequential incremental matcher (the device result equals
/// this when records are processed in arrival order — e.g. batch size 1
/// with a large interval).
pub fn sequential_matches(records: &[RawRecord], pattern: &[u16]) -> u64 {
    let l = pattern.len();
    let mut state: HashMap<u64, u64> = HashMap::new();
    let mut matches = 0;
    for r in records {
        if r.rtype != 1 {
            continue;
        }
        let (s, d, t) = (r.fields[0], r.fields[1], r.fields[2] as u16);
        let bits = state.get(&s).copied().unwrap_or(0) | 1;
        let mut new = 0u64;
        for (i, &pt) in pattern.iter().enumerate() {
            if pt == t && bits & (1 << i) != 0 {
                new |= 1 << (i + 1);
            }
        }
        if new == 0 {
            continue;
        }
        if new & (1 << l) != 0 {
            matches += 1;
        }
        *state.entry(d).or_insert(0) |= new;
    }
    matches
}

#[derive(Clone, Default)]
struct RecSt {
    recid: u64,
    src: u64,
    dst: u64,
    etype: u64,
}

#[derive(Clone, Default)]
struct FeedSt {
    next: usize,
    stride: usize,
    per_batch: usize,
}

updown_sim::snap_state!(RecSt, "pm.record", { recid, src, dst, etype });
updown_sim::snap_state!(FeedSt, "pm.feeder", { next, stride, per_batch });

/// Stream `records` through ingestion + partial match on a lane subset.
pub fn run_partial_match(records: &[RawRecord], cfg: &PmConfig) -> PmResult {
    let mc = &cfg.machine;
    let mut eng = Engine::new(mc.clone());
    eng.register_state_codec::<RecSt>();
    eng.register_state_codec::<FeedSt>();
    if cfg.trace {
        eng.enable_event_trace();
    }
    assert!(cfg.lanes >= 2 && cfg.lanes <= mc.total_lanes());
    assert!(cfg.pattern.len() < 48, "pattern too long for the bitmask");
    let set = LaneSet::new(NetworkId(0), cfg.lanes);
    let layout = Layout::cyclic(mc.nodes);

    let sht = ShtLib::install(&mut eng);
    // Size tables for the stream: ~6x headroom over the record count so
    // hashed bucket tails fit (the artifact exposes the same BL/EB knobs).
    let eb = cfg.vertex_eb.max(32);
    let need_bl =
        ((records.len() as u64 * 6).div_ceil(cfg.lanes as u64 * eb as u64) as u32).max(cfg.vertex_bl);
    let bl = need_bl.next_power_of_two();
    let pga = Pga::create(&mut eng, &sht, set, bl, eb, bl, eb, layout);
    // Pattern state table, keyed by vertex.
    let state = sht.create(&mut eng, set, bl, eb, layout);
    let match_cell = Region::alloc_words(&mut eng, 1, Layout::cyclic(1)).expect("matches");

    let latencies: Arc<Mutex<Vec<(u64, u64)>>> = Arc::default();
    let matches: Arc<Mutex<u64>> = Arc::default();
    let in_flight: Arc<std::sync::atomic::AtomicU64> = Arc::default();
    // Handler-visible host state must survive rewinds (docs/checkpoint.md).
    eng.host_state_cell(&latencies);
    eng.host_state_cell(&matches);
    {
        let a = in_flight.clone();
        let b = in_flight.clone();
        eng.register_host_state(
            move || a.load(std::sync::atomic::Ordering::Relaxed),
            move |v| b.store(*v, std::sync::atomic::Ordering::Relaxed),
        );
    }
    let credit_cap = cfg.inflight_per_lane as u64 * cfg.lanes as u64;
    let pattern = cfg.pattern.clone();
    let plen = pattern.len() as u64;
    let batch = cfg.batch.max(1);
    let interval = cfg.interval;

    // ---- per-record processing thread ------------------------------------
    let complete = {
        let latencies = latencies.clone();
        let in_flight = in_flight.clone();
        udweave::event::<RecSt>(&mut eng, "pm::complete", move |ctx, st| {
            // Latency counts from the record's *nominal* arrival at the
            // port (its place in the stream schedule), so port
            // backpressure queueing is included. The nominal tick is a
            // pure function of the record id — no cross-shard host
            // lookup, which keeps isolated shard replay faithful.
            let t0 = (st.recid / batch as u64) * interval;
            latencies
                .lock().unwrap()
                .push((st.recid, ctx.now().saturating_sub(t0)));
            in_flight.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            ctx.yield_terminate();
        })
    };
    let or_ack = udweave::event::<RecSt>(&mut eng, "pm::orAck", move |ctx, st| {
        let _ = st;
        let me = ctx.self_event(complete);
        ctx.send_event(me, [], EventWord::IGNORE);
    });
    let state_ret = {
        let sht2 = sht.clone();
        let matches = matches.clone();
        udweave::event::<RecSt>(&mut eng, "pm::stateRet", move |ctx, st| {
            let found = ctx.arg(0);
            let bits = if found != 0 { ctx.arg(1) } else { 0 } | 1;
            let mut new = 0u64;
            for (i, &pt) in pattern.iter().enumerate() {
                if pt as u64 == st.etype && bits & (1 << i) != 0 {
                    new |= 1 << (i + 1);
                }
            }
            ctx.charge(pattern.len() as u64 + 2);
            if new == 0 {
                let me = ctx.self_event(complete);
                ctx.send_event(me, [], EventWord::IGNORE);
                return;
            }
            if new & (1 << plen) != 0 {
                // Full match: the alert the artifact prints to the terminal.
                *matches.lock().unwrap() += 1;
                ctx.dram_fetch_add_u64(match_cell.base, 1, None, None);
                ctx.print_with(|| {
                    format!(
                        "startPartialMatch: srcID: {}, dstID: {}, type_oid: {} -- MATCH",
                        st.src, st.dst, st.etype
                    )
                });
            }
            let ack = ctx.self_event(or_ack);
            sht2.fetch_or(ctx, state, st.dst, new, ack);
        })
    };
    let edge_ack = {
        let sht2 = sht.clone();
        udweave::event::<RecSt>(&mut eng, "pm::edgeAck", move |ctx, st| {
            let ret = ctx.self_event(state_ret);
            sht2.get(ctx, state, st.src, ret);
        })
    };
    let rec_proc = {
        let sht2 = sht.clone();
        udweave::event::<RecSt>(&mut eng, "pm::recProc", move |ctx, st| {
            st.recid = ctx.arg(4);
            if ctx.arg(0) == 0 {
                st.src = ctx.arg(1);
                let ack = ctx.self_event(complete);
                pga.add_vertex(ctx, &sht2, ctx.arg(1), ctx.arg(2) as u16, ack);
            } else {
                st.src = ctx.arg(1);
                st.dst = ctx.arg(2);
                st.etype = ctx.arg(3);
                let ack = ctx.self_event(edge_ack);
                pga.add_edge(ctx, &sht2, st.src, st.dst, st.etype as u16, ack);
            }
        })
    };

    // ---- feeders: the network stream arrives at several ingress lanes ----
    let recs: Arc<Vec<RawRecord>> = Arc::new(records.to_vec());
    let n_feeders = cfg.feeders.clamp(1, cfg.lanes);
    let per_batch = batch.div_ceil(n_feeders as usize).max(1);
    let lanes = cfg.lanes;
    let feeder = {
        let recs = recs.clone();
        let in_flight = in_flight.clone();
        udweave::event::<FeedSt>(&mut eng, "pm::feeder", move |ctx, st| {
            if st.stride == 0 {
                // First firing: args carry this feeder's lane offset.
                st.next = ctx.arg(0) as usize;
                st.stride = n_feeders as usize;
                st.per_batch = per_batch;
            }
            let mut sent = 0;
            while sent < st.per_batch
                && st.next < recs.len()
                && in_flight.load(std::sync::atomic::Ordering::Relaxed) < credit_cap
            {
                let idx = st.next;
                let r = &recs[idx];
                in_flight.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let lane = set.lane(idx as u32 % lanes);
                ctx.send_event(
                    EventWord::new(lane, rec_proc),
                    [r.rtype, r.fields[0], r.fields[1], r.fields[2], idx as u64],
                    EventWord::IGNORE,
                );
                st.next += st.stride;
                sent += 1;
            }
            if st.next < recs.len() {
                let me = ctx.cur_evw();
                // Back off a little harder when throttled by credits.
                let delay = if sent == 0 { interval.max(50) } else { interval };
                ctx.send_event_after(delay, me, [], EventWord::IGNORE);
            } else {
                ctx.yield_terminate();
            }
        })
    };

    eng.enable_trace();
    for f in 0..n_feeders {
        // Spread ingress ports across the lane set.
        let port = set.lane(f * (lanes / n_feeders).max(1) % lanes);
        eng.send(EventWord::new(port, feeder), [f as u64], EventWord::IGNORE);
    }
    let report = eng.run();

    let mut lat = latencies.lock().unwrap().clone();
    if lat.len() != records.len() {
        let mut seen = std::collections::HashMap::new();
        for (id, _) in &lat {
            *seen.entry(*id).or_insert(0u32) += 1;
        }
        let dups: Vec<_> = seen.iter().filter(|(_, &c)| c > 1).take(5).collect();
        let missing: Vec<_> = (0..records.len() as u64)
            .filter(|i| !seen.contains_key(i))
            .take(5)
            .collect();
        panic!(
            "completions {} != records {}; dups {:?} missing {:?}",
            lat.len(),
            records.len(),
            dups,
            missing
        );
    }
    lat.sort_unstable();
    let matches_out = *matches.lock().unwrap();
    let trace_json = cfg.trace.then(|| eng.chrome_trace_json());
    eng.finish_replay("partial_match");
    PmResult {
        matches: matches_out,
        latencies: lat.into_iter().map(|(_, l)| l).collect(),
        final_tick: report.final_tick,
        report,
        trace_json,
    }
}

/// Declared-effects spec for the streaming partial-match app (`udspec`).
///
/// No KVMSR here: host-seeded `thread::pm::feeder` threads stream records
/// to fresh `thread::pm::recProc` threads, each of which walks the
/// ingest-then-match chain (`edgeAck` → `stateRet` → `orAck` →
/// `complete`) through `thread::sht::op` requests.
pub fn spec() -> udweave::ProgramSpec {
    let mut spec = udweave::ProgramSpec::new();
    ShtLib::spec_decl(&mut spec);
    let t = spec.thread("thread::pm");
    {
        let e = t.event("feeder");
        e.args(0, 1).from_host().live_per_lane(1);
        e.send("thread::pm::recProc", |s| {
            s.args(5, 5).to_new().conditional().fanout_unbounded();
        });
        // Credit-throttled self-reschedule until the stream drains.
        e.send("thread::pm::feeder", |s| {
            s.args(0, 0).conditional();
        });
        e.terminates();
    }
    {
        let e = t.event("recProc");
        e.args(5, 5).live_unbounded();
        // Exactly one PGA insert per record: add_vertex (acked at
        // `complete`) or add_edge (acked at `edgeAck`).
        e.send("thread::sht::op", |s| {
            s.args(4, 4).to_new().with_cont();
        });
    }
    {
        let e = t.event("edgeAck");
        e.args(2, 2).on("thread::pm::recProc");
        e.send("thread::sht::op", |s| {
            s.args(4, 4).to_new().with_cont();
        });
    }
    {
        let e = t.event("stateRet");
        e.args(2, 2).on("thread::pm::recProc");
        e.send("thread::sht::op", |s| {
            s.args(4, 4).to_new().with_cont().conditional();
        });
        e.send("thread::pm::complete", |s| {
            s.args(0, 0).conditional();
        });
    }
    {
        let e = t.event("orAck");
        e.args(2, 2).on("thread::pm::recProc");
        e.send("thread::pm::complete", |s| {
            s.args(0, 0);
        });
    }
    t.event("complete")
        .args(0, 2)
        .on("thread::pm::recProc")
        .terminates();
    spec
}

/// Workload descriptor for `udcost` (docs/analysis.md): predicted event
/// counts for [`run_partial_match`] on this exact stream and config.
///
/// Feeder firings replay the batch/stride schedule (credit backpressure
/// ignored — it delays firings, it does not add any). The match chain is
/// replayed in sequential arrival order, which is an approximation: under
/// parallel arrival a record can observe more or less prefix state, so
/// the `fetch_or` count (and with it `orAck`) can shift slightly.
pub fn workload(records: &[RawRecord], cfg: &PmConfig) -> udweave::Workload {
    let n = records.len();
    let n_feeders = cfg.feeders.clamp(1, cfg.lanes) as usize;
    let batch = cfg.batch.max(1);
    let per_batch = batch.div_ceil(n_feeders).max(1);
    let mut feeder = 0.0;
    for f in 0..n_feeders {
        let count_f = n.saturating_sub(f).div_ceil(n_feeders);
        feeder += count_f.div_ceil(per_batch).max(1) as f64;
    }

    // Sequential replay of the match chain (see `sequential_matches`).
    let mut state: std::collections::BTreeMap<u64, u64> = Default::default();
    let mut n_edges = 0.0;
    let mut n_or = 0.0;
    for r in records {
        if r.rtype == 0 {
            continue;
        }
        n_edges += 1.0;
        let (s, d, t) = (r.fields[0], r.fields[1], r.fields[2] as u16);
        let bits = state.get(&s).copied().unwrap_or(0) | 1;
        let mut new = 0u64;
        for (i, &pt) in cfg.pattern.iter().enumerate() {
            if pt == t && bits & (1 << i) != 0 {
                new |= 1 << (i + 1);
            }
        }
        if new == 0 {
            continue;
        }
        n_or += 1.0;
        *state.entry(d).or_insert(0) |= new;
    }
    let n_verts = n as f64 - n_edges;
    let ops = n_verts + 2.0 * n_edges + n_or;

    let mut w = udweave::Workload::new();
    w.count("thread::pm::feeder", feeder)
        .count("thread::pm::recProc", n as f64)
        .count("thread::pm::edgeAck", n_edges)
        .count("thread::pm::stateRet", n_edges)
        .count("thread::pm::orAck", n_or)
        .count("thread::pm::complete", n as f64)
        .count("thread::sht::op", ops)
        .count("thread::sht::op_fin", ops);
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(s: u64, d: u64, t: u64) -> RawRecord {
        RawRecord::edge(s, d, t)
    }

    #[test]
    fn sequential_oracle_counts_paths() {
        // Pattern 1 -> 2: edges forming one full path.
        let recs = vec![edge(0, 1, 1), edge(1, 2, 2)];
        assert_eq!(sequential_matches(&recs, &[1, 2]), 1);
        // Reverse arrival order: non-retroactive, no match.
        let recs = vec![edge(1, 2, 2), edge(0, 1, 1)];
        assert_eq!(sequential_matches(&recs, &[1, 2]), 0);
    }

    #[test]
    fn device_matches_sequential_when_serialized() {
        // Serialize: batch = 1, huge interval.
        let recs = vec![
            RawRecord::vertex(0, 1),
            edge(0, 1, 1),
            edge(1, 2, 2),
            edge(2, 3, 3),
            edge(5, 1, 1),
            edge(1, 9, 2),
            edge(9, 4, 3),
        ];
        let mut cfg = PmConfig::new(8, vec![1, 2, 3]);
        cfg.machine = MachineConfig::small(1, 2, 8);
        cfg.batch = 1;
        cfg.interval = 60_000;
        cfg.feeders = 1;
        let res = run_partial_match(&recs, &cfg);
        let expect = sequential_matches(&recs, &[1, 2, 3]);
        assert_eq!(res.matches, expect);
        assert!(expect >= 2, "both 3-paths complete");
        assert_eq!(res.latencies.len(), recs.len());
        assert!(res.mean_latency() > 0.0);
    }

    #[test]
    fn more_lanes_cut_latency_under_load() {
        // The arrival rate overloads 4 lanes (queueing latency explodes)
        // but not 64 — the Figure 11 effect: adding compute resources
        // reduces match latency.
        let ds = crate::ingest::datagen::generate(2000, 100, 3);
        let run = |lanes: u32| {
            let mut cfg = PmConfig::new(lanes, vec![1, 2]);
            cfg.machine = MachineConfig::small(1, 4, 16);
            cfg.batch = 200;
            cfg.interval = 1000;
            run_partial_match(&ds.records, &cfg).mean_latency()
        };
        let slow = run(4);
        let fast = run(64);
        assert!(
            fast * 3.0 < slow,
            "64 lanes ({fast:.0}) should be far below 4 lanes ({slow:.0})"
        );
    }
}
