//! The discrete-event engine: executes events on lanes under the Table-2
//! cost model, routes messages through the network model, and services DRAM
//! requests through per-node memory channels.
//!
//! The engine is deterministic: the calendar orders actions by
//! `(time, sequence)` where sequence numbers are issued in creation order.
//! Handlers are single-threaded `Rc` closures that capture whatever
//! host-side state the program needs (the UDWeave layer builds a typed API
//! on top).

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::rc::Rc;

use crate::config::MachineConfig;
use crate::ids::{EventLabel, EventWord, NetworkId, ThreadId};
use crate::lane::Lane;
use crate::memory::{GlobalMemory, MemChannels, VAddr};
use crate::message::Message;
use crate::network::Nics;
use crate::stats::{Counters, LaneMetrics, Metrics, NodeMetrics, UTIL_HIST_BUCKETS};
use crate::trace::{DramStage, PhaseSpan, TraceEvent, Tracer};

/// Number of lanes in the [`Metrics::hot_lanes`] report.
const HOT_LANES_TOP_K: usize = 8;

/// A handler executes one event. It may read/write its thread state, send
/// messages, and issue DRAM requests through the [`EventCtx`].
pub type Handler = Rc<dyn Fn(&mut EventCtx<'_>)>;

struct HandlerEntry {
    name: String,
    f: Handler,
    /// Executions of this event (diagnostics).
    count: u64,
    /// Tick of the most recent execution (diagnostics).
    last_tick: u64,
}

/// A DRAM transaction payload, applied when its response arrives back at
/// the issuing lane.
#[derive(Clone, Debug)]
enum MemOp {
    Read {
        va: VAddr,
        nwords: u8,
        ret: EventWord,
        tag: Option<u64>,
    },
    Write {
        va: VAddr,
        words: Vec<u64>,
        ack: Option<EventWord>,
        tag: Option<u64>,
    },
    AddU64 {
        va: VAddr,
        delta: u64,
        ret: Option<EventWord>,
        tag: Option<u64>,
    },
    AddF64 {
        va: VAddr,
        delta: f64,
        ret: Option<EventWord>,
        tag: Option<u64>,
    },
}

impl MemOp {
    /// Payload bytes moved by the transaction (response for reads, data
    /// for writes).
    fn bytes(&self) -> u64 {
        match self {
            MemOp::Read { nwords, .. } => *nwords as u64 * 8,
            MemOp::Write { words, .. } => words.len() as u64 * 8,
            MemOp::AddU64 { .. } | MemOp::AddF64 { .. } => 8,
        }
    }

    fn is_write(&self) -> bool {
        !matches!(self, MemOp::Read { .. })
    }
}

/// DRAM transactions are staged through the calendar so each shared
/// resource (source NIC, memory channel, owner NIC) is reserved at the
/// moment the transaction actually reaches it — reservations happen in
/// time order, which keeps the FIFO pipelines honest.
#[derive(Clone, Debug)]
enum Action {
    Deliver(Message),
    LaneRun(u32),
    /// Request has arrived at the owning node's memory channel.
    /// `trace_id` correlates the stages of one transaction in the event
    /// trace; 0 when tracing is off.
    MemArrive {
        op: MemOp,
        src_node: u32,
        owner: u32,
        trace_id: u64,
    },
    /// Channel service complete; send the response back.
    MemServed {
        op: MemOp,
        src_node: u32,
        owner: u32,
        trace_id: u64,
    },
    /// Response arrived at the issuing lane: apply and deliver.
    MemDone {
        op: MemOp,
        owner: u32,
        trace_id: u64,
    },
}

struct Sched {
    time: u64,
    seq: u64,
    action: Action,
}

impl PartialEq for Sched {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Sched {}
impl PartialOrd for Sched {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sched {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Outgoing effects collected during one event execution; the engine turns
/// them into scheduled actions at the event's completion time.
enum Outgoing {
    Msg(Message, u64),
    DramRead {
        va: VAddr,
        nwords: u8,
        ret: EventWord,
        tag: Option<u64>,
    },
    DramWrite {
        va: VAddr,
        words: Vec<u64>,
        ack: Option<EventWord>,
        tag: Option<u64>,
    },
    AtomicAddU64 {
        va: VAddr,
        delta: u64,
        ret: Option<EventWord>,
        tag: Option<u64>,
    },
    AtomicAddF64 {
        va: VAddr,
        delta: f64,
        ret: Option<EventWord>,
        tag: Option<u64>,
    },
}

struct Core {
    cfg: MachineConfig,
    now: u64,
    seq: u64,
    calendar: BinaryHeap<Reverse<Sched>>,
    lanes: Vec<Lane>,
    mem: GlobalMemory,
    channels: MemChannels,
    nics: Nics,
    stats: Counters,
    stop: bool,
    event_limit: u64,
    trace: Option<Vec<String>>,
    /// Event tracer; present only when event tracing is enabled. All
    /// recording paths are read-only with respect to simulated time,
    /// costs, and calendar sequence numbers (zero observer effect).
    tracer: Option<Tracer>,
    /// Phase spans (`phase_begin`/`phase_end`), in begin order.
    phases: Vec<PhaseSpan>,
    /// Runtime-defined counters (`EventCtx::bump` / `EventCtx::peak`).
    custom: BTreeMap<&'static str, u64>,
    /// Completion time of the latest-finishing executed event.
    last_completion: u64,
}

impl Core {
    fn schedule(&mut self, time: u64, action: Action) {
        self.seq += 1;
        self.calendar.push(Reverse(Sched {
            time,
            seq: self.seq,
            action,
        }));
        self.stats.peak_calendar = self.stats.peak_calendar.max(self.calendar.len());
    }

    fn lane_mut(&mut self, nwid: NetworkId) -> &mut Lane {
        &mut self.lanes[nwid.0 as usize]
    }

    fn deliver(&mut self, t: u64, msg: Message) {
        let l = msg.dst.nwid();
        assert!(
            (l.0 as usize) < self.lanes.len(),
            "message to nonexistent lane {} (machine has {})",
            l.0,
            self.lanes.len()
        );
        let lane = self.lane_mut(l);
        lane.inbox.push_back(msg);
        if !lane.scheduled {
            lane.scheduled = true;
            let at = t.max(lane.free_at);
            self.schedule(at, Action::LaneRun(l.0));
        }
    }

    /// Latency for a lane->memory or memory->lane hop.
    fn mem_hop_latency(&self, lane_node: u32, mem_node: u32) -> u64 {
        if lane_node == mem_node {
            self.cfg.net.intra_node_latency
        } else {
            self.cfg.net.inter_node_latency
        }
    }

    /// Issue a DRAM transaction at `t` from `src`: reserve the source NIC
    /// (remote targets) and schedule the channel-arrival stage.
    fn dram_issue(&mut self, t: u64, src: NetworkId, va: VAddr, op: MemOp) {
        let owner = match self.mem.owner_node(va) {
            Ok(n) => n,
            Err(e) => panic!("DRAM access fault from lane {}: {e} ({va:?})", src.0),
        };
        let src_node = self.cfg.node_of(src);
        let arrival = if owner != src_node {
            self.stats.dram_remote_accesses += 1;
            // Request messages are one 72-byte unit regardless of payload.
            let depart = self.nics.inject(src_node, t, 72);
            depart + self.cfg.net.inter_node_latency
        } else {
            t + self.mem_hop_latency(src_node, owner)
        };
        let trace_id = match &mut self.tracer {
            Some(tr) => tr.alloc_id(),
            None => 0,
        };
        self.schedule(
            arrival,
            Action::MemArrive {
                op,
                src_node,
                owner,
                trace_id,
            },
        );
    }

    fn trace_line(&mut self, line: String) {
        if let Some(t) = &mut self.trace {
            t.push(line);
        }
    }

    fn phase_begin(&mut self, name: &str) {
        let now = self.now;
        self.phases.push(PhaseSpan {
            name: name.to_string(),
            start: now,
            end: u64::MAX,
        });
    }

    /// Close the most recent open span with this name; ignored when no
    /// such span exists (so instrumentation is safe on partial runs).
    fn phase_end(&mut self, name: &str) {
        let now = self.now;
        if let Some(p) = self
            .phases
            .iter_mut()
            .rev()
            .find(|p| p.is_open() && p.name == name)
        {
            p.end = now;
        }
    }
}

/// The simulator.
pub struct Engine {
    core: Core,
    handlers: Vec<HandlerEntry>,
}

impl Engine {
    pub fn new(cfg: MachineConfig) -> Engine {
        let total = cfg.total_lanes() as usize;
        let mut lanes = Vec::with_capacity(total);
        lanes.resize_with(total, Lane::default);
        let mem = GlobalMemory::new(cfg.nodes);
        let channels = MemChannels::new(cfg.nodes, &cfg.mem);
        let nics = Nics::new(cfg.nodes, &cfg.net);
        Engine {
            core: Core {
                cfg,
                now: 0,
                seq: 0,
                calendar: BinaryHeap::new(),
                lanes,
                mem,
                channels,
                nics,
                stats: Counters::default(),
                stop: false,
                event_limit: u64::MAX,
                trace: None,
                tracer: None,
                phases: Vec::new(),
                custom: BTreeMap::new(),
                last_completion: 0,
            },
            handlers: Vec::new(),
        }
    }

    pub fn config(&self) -> &MachineConfig {
        &self.core.cfg
    }

    /// Register an event handler; returns its label.
    pub fn register(&mut self, name: &str, f: Handler) -> EventLabel {
        assert!(self.handlers.len() < u16::MAX as usize, "handler table full");
        let label = EventLabel(self.handlers.len() as u16);
        self.handlers.push(HandlerEntry {
            name: name.to_string(),
            f,
            count: 0,
            last_tick: 0,
        });
        label
    }

    /// Name of a registered event (for traces and diagnostics).
    pub fn event_name(&self, label: EventLabel) -> &str {
        &self.handlers[label.0 as usize].name
    }

    /// Host-side (TOP core) injection of an initial event at the current
    /// simulation time.
    pub fn send(&mut self, dst: EventWord, args: impl Into<Vec<u64>>, cont: EventWord) {
        let msg = Message::new(dst, args, cont, NetworkId(0));
        let t = self.core.now;
        self.core.deliver(t, msg);
    }

    /// Functional access to global memory for host-side setup/inspection
    /// (the TOP core's mmap-style access; not charged simulation time).
    pub fn mem(&self) -> &GlobalMemory {
        &self.core.mem
    }

    pub fn mem_mut(&mut self) -> &mut GlobalMemory {
        &mut self.core.mem
    }

    /// Cap the number of executed events (runaway guard). The run stops
    /// with [`Metrics`] when exceeded.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.core.event_limit = limit;
    }

    /// Record `[PRINT]`-style trace lines emitted via [`EventCtx::print`].
    pub fn enable_trace(&mut self) {
        self.core.trace = Some(Vec::new());
    }

    pub fn trace(&self) -> &[String] {
        self.core.trace.as_deref().unwrap_or(&[])
    }

    /// Enable the structured event trace (lane busy spans, message
    /// transits, DRAM stages, counters). Recording has **zero observer
    /// effect**: simulated cycle counts are byte-identical with tracing
    /// on or off. Export with [`Engine::chrome_trace_json`].
    pub fn enable_event_trace(&mut self) {
        if self.core.tracer.is_none() {
            self.core.tracer = Some(Tracer::new());
        }
    }

    pub fn event_trace_enabled(&self) -> bool {
        self.core.tracer.is_some()
    }

    /// Recorded trace events (empty when event tracing is disabled).
    pub fn event_trace(&self) -> &[TraceEvent] {
        self.core
            .tracer
            .as_ref()
            .map(|t| t.events.as_slice())
            .unwrap_or(&[])
    }

    /// Begin a named phase span at the current simulation time (host
    /// side; device code uses [`EventCtx::phase_begin`]).
    pub fn phase_begin(&mut self, name: &str) {
        self.core.phase_begin(name);
    }

    /// End the most recent open span with this name.
    pub fn phase_end(&mut self, name: &str) {
        self.core.phase_end(name);
    }

    /// Phase spans recorded so far (open spans have `end == u64::MAX`).
    pub fn phases(&self) -> &[PhaseSpan] {
        &self.core.phases
    }

    /// Export the event trace in Chrome `trace_event` JSON format (open
    /// in `chrome://tracing` or Perfetto). Includes phase spans even when
    /// event tracing is disabled.
    pub fn chrome_trace_json(&self) -> String {
        let names: Vec<String> = self.handlers.iter().map(|h| h.name.clone()).collect();
        let events = self.event_trace();
        let final_tick = self.core.now.max(self.core.last_completion);
        crate::trace::chrome_trace_json(
            events,
            &self.core.phases,
            &names,
            self.core.cfg.lanes_per_node(),
            self.core.cfg.clock_ghz,
            final_tick,
        )
    }

    /// Write the Chrome trace JSON to `path`.
    pub fn write_chrome_trace(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    pub fn stats(&self) -> &Counters {
        &self.core.stats
    }

    /// Per-lane busy-cycle maximum and its lane id (diagnostics: detects
    /// serialization hot spots).
    pub fn busiest_lane(&self) -> (u32, u64) {
        let mut best = (0u32, 0u64);
        for (i, l) in self.core.lanes.iter().enumerate() {
            if l.busy > best.1 {
                best = (i as u32, l.busy);
            }
        }
        best
    }

    /// Lane with the most executed events (diagnostics).
    pub fn most_events_lane(&self) -> (u32, u64) {
        let mut best = (0u32, 0u64);
        for (i, l) in self.core.lanes.iter().enumerate() {
            if l.events > best.1 {
                best = (i as u32, l.events);
            }
        }
        best
    }

    /// Execution counts per event name, descending (diagnostics).
    pub fn event_counts(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .handlers
            .iter()
            .filter(|h| h.count > 0)
            .map(|h| (format!("{} (last @{})", h.name, h.last_tick), h.count))
            .collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    }

    pub fn now(&self) -> u64 {
        self.core.now
    }

    /// Run until the calendar drains, `stop()` is called, or the event
    /// limit is hit. A stopped engine can be run again: the stop flag is
    /// cleared on entry (pending calendar actions resume).
    pub fn run(&mut self) -> Metrics {
        self.core.stop = false;
        while !self.core.stop && self.core.stats.events_executed < self.core.event_limit {
            let Some(Reverse(s)) = self.core.calendar.pop() else {
                break;
            };
            debug_assert!(s.time >= self.core.now, "time went backwards");
            self.core.now = s.time;
            match s.action {
                Action::Deliver(msg) => {
                    let t = self.core.now;
                    self.core.deliver(t, msg);
                }
                Action::LaneRun(l) => self.lane_run(l),
                Action::MemArrive {
                    op,
                    src_node,
                    owner,
                    trace_id,
                } => {
                    let now = self.core.now;
                    let bytes = op.bytes();
                    if let Some(tr) = &mut self.core.tracer {
                        tr.record(TraceEvent::Dram {
                            id: trace_id,
                            stage: DramStage::Arrive,
                            node: owner,
                            time: now,
                            bytes,
                            write: op.is_write(),
                        });
                    }
                    let served = self.core.channels.service(owner, now, bytes);
                    self.core.schedule(
                        served,
                        Action::MemServed {
                            op,
                            src_node,
                            owner,
                            trace_id,
                        },
                    );
                }
                Action::MemServed {
                    op,
                    src_node,
                    owner,
                    trace_id,
                } => {
                    let now = self.core.now;
                    let bytes = op.bytes();
                    if let Some(tr) = &mut self.core.tracer {
                        tr.record(TraceEvent::Dram {
                            id: trace_id,
                            stage: DramStage::Served,
                            node: owner,
                            time: now,
                            bytes,
                            write: op.is_write(),
                        });
                    }
                    let arrival = if owner != src_node {
                        let depart = self.core.nics.inject(owner, now, 8 + bytes);
                        depart + self.core.cfg.net.inter_node_latency
                    } else {
                        now + self.core.mem_hop_latency(src_node, owner)
                    };
                    self.core
                        .schedule(arrival, Action::MemDone { op, owner, trace_id });
                }
                Action::MemDone { op, owner, trace_id } => {
                    let t = self.core.now;
                    if let Some(tr) = &mut self.core.tracer {
                        tr.record(TraceEvent::Dram {
                            id: trace_id,
                            stage: DramStage::Respond,
                            node: owner,
                            time: t,
                            bytes: op.bytes(),
                            write: op.is_write(),
                        });
                    }
                    match op {
                        MemOp::Read {
                            va,
                            nwords,
                            ret,
                            tag,
                        } => {
                            let mut words = match self.core.mem.read_words(va, nwords as usize) {
                                Ok(w) => w,
                                Err(e) => panic!("DRAM read fault at service time: {e}"),
                            };
                            if let Some(tag) = tag {
                                words.push(tag);
                            }
                            self.core
                                .deliver(t, Message::new(ret, words, EventWord::IGNORE, ret.nwid()));
                        }
                        MemOp::Write {
                            va,
                            words,
                            ack,
                            tag,
                        } => {
                            self.core
                                .mem
                                .write_words(va, &words)
                                .unwrap_or_else(|e| panic!("DRAM write fault at service time: {e}"));
                            if let Some(ack) = ack {
                                let mut args = vec![va.0];
                                if let Some(tag) = tag {
                                    args.push(tag);
                                }
                                self.core.deliver(
                                    t,
                                    Message::new(ack, args, EventWord::IGNORE, ack.nwid()),
                                );
                            }
                        }
                        MemOp::AddU64 {
                            va,
                            delta,
                            ret,
                            tag,
                        } => {
                            let old = self
                                .core
                                .mem
                                .fetch_add_u64(va, delta)
                                .unwrap_or_else(|e| panic!("DRAM atomic fault: {e}"));
                            if let Some(ret) = ret {
                                let mut args = vec![old];
                                if let Some(tag) = tag {
                                    args.push(tag);
                                }
                                self.core.deliver(
                                    t,
                                    Message::new(ret, args, EventWord::IGNORE, ret.nwid()),
                                );
                            }
                        }
                        MemOp::AddF64 {
                            va,
                            delta,
                            ret,
                            tag,
                        } => {
                            let old = self
                                .core
                                .mem
                                .fetch_add_f64(va, delta)
                                .unwrap_or_else(|e| panic!("DRAM atomic fault: {e}"));
                            if let Some(ret) = ret {
                                let mut args = vec![old.to_bits()];
                                if let Some(tag) = tag {
                                    args.push(tag);
                                }
                                self.core.deliver(
                                    t,
                                    Message::new(ret, args, EventWord::IGNORE, ret.nwid()),
                                );
                            }
                        }
                    }
                }
            }
        }
        // Graceful stop: apply all in-flight memory effects so host-visible
        // memory is consistent (message deliveries and lane work are
        // discarded; acks/read-returns have no one left to run them).
        if self.core.stop {
            while let Some(Reverse(s)) = self.core.calendar.pop() {
                let op = match s.action {
                    Action::MemArrive { op, .. }
                    | Action::MemServed { op, .. }
                    | Action::MemDone { op, .. } => op,
                    Action::Deliver(_) | Action::LaneRun(_) => continue,
                };
                match op {
                    MemOp::Write { va, words, .. } => {
                        self.core
                            .mem
                            .write_words(va, &words)
                            .unwrap_or_else(|e| panic!("DRAM write fault at drain: {e}"));
                    }
                    MemOp::AddU64 { va, delta, .. } => {
                        let _ = self.core.mem.fetch_add_u64(va, delta);
                    }
                    MemOp::AddF64 { va, delta, .. } => {
                        let _ = self.core.mem.fetch_add_f64(va, delta);
                    }
                    MemOp::Read { .. } => {}
                }
            }
        }
        self.metrics()
    }

    /// Build the final [`Metrics`] without running: machine-wide counters
    /// plus per-node rollups, lane-utilization histograms, the top-K
    /// hottest lanes, and any recorded phase spans.
    pub fn metrics(&self) -> Metrics {
        let final_tick = self.core.now.max(self.core.last_completion);
        let lanes_per_node = self.core.cfg.lanes_per_node().max(1) as usize;
        let n_nodes = self.core.cfg.nodes as usize;

        let mut nodes: Vec<NodeMetrics> = (0..n_nodes)
            .map(|n| NodeMetrics {
                node: n as u32,
                lanes: lanes_per_node as u64,
                dram_served_bytes: self.core.channels.served_bytes.get(n).copied().unwrap_or(0),
                nic_injected_bytes: self.core.nics.injected_bytes.get(n).copied().unwrap_or(0),
                ..NodeMetrics::default()
            })
            .collect();

        let mut total_busy = 0u64;
        let mut active_lanes = 0u64;
        let mut hot: Vec<LaneMetrics> = Vec::new();
        for (i, lane) in self.core.lanes.iter().enumerate() {
            total_busy += lane.busy;
            let node = i / lanes_per_node;
            let nm = &mut nodes[node.min(n_nodes.saturating_sub(1))];
            nm.busy += lane.busy;
            nm.events += lane.events;
            nm.max_lane_busy = nm.max_lane_busy.max(lane.busy);
            if lane.events > 0 {
                active_lanes += 1;
                nm.active_lanes += 1;
            }
            let bucket = if final_tick == 0 {
                0
            } else {
                ((lane.busy as u128 * UTIL_HIST_BUCKETS as u128 / final_tick as u128) as usize)
                    .min(UTIL_HIST_BUCKETS - 1)
            };
            nm.lane_util_hist[bucket] += 1;
            if lane.busy > 0 {
                hot.push(LaneMetrics {
                    lane: i as u32,
                    node: node as u32,
                    busy: lane.busy,
                    events: lane.events,
                });
            }
        }
        hot.sort_by(|a, b| b.busy.cmp(&a.busy).then(a.lane.cmp(&b.lane)));
        hot.truncate(HOT_LANES_TOP_K);

        let mut phases = self.core.phases.clone();
        for p in &mut phases {
            if p.is_open() {
                p.end = final_tick;
            }
        }

        Metrics {
            final_tick,
            clock_ghz: self.core.cfg.clock_ghz,
            stats: self.core.stats.clone(),
            total_busy,
            active_lanes,
            total_lanes: self.core.lanes.len() as u64,
            nodes,
            hot_lanes: hot,
            phases,
            custom: self.core.custom.clone(),
        }
    }

    /// Back-compat alias for [`Engine::metrics`].
    pub fn report(&self) -> Metrics {
        self.metrics()
    }

    fn lane_run(&mut self, l: u32) {
        let t = self.core.now;
        let max_threads = self.core.cfg.max_threads_per_lane;
        let lane = &mut self.core.lanes[l as usize];
        debug_assert!(lane.scheduled);
        let Some(msg) = lane.inbox.pop_front() else {
            lane.scheduled = false;
            return;
        };
        // Resolve the thread context.
        let is_new = msg.dst.tid() == ThreadId::NEW;
        let tid = match lane.resolve_thread(msg.dst, max_threads) {
            Some(tid) => tid,
            None => {
                // Thread table full: park this message and try the next.
                lane.parked.push_back(msg);
                self.core.stats.thread_table_stalls += 1;
                if lane.inbox.is_empty() {
                    lane.scheduled = false;
                } else {
                    self.core.schedule(t, Action::LaneRun(l));
                }
                return;
            }
        };
        if is_new {
            self.core.stats.threads_created += 1;
        }
        let state = lane
            .threads
            .get_mut(&tid.0)
            .unwrap_or_else(|| {
                panic!(
                    "event {:?} targets dead thread on lane {l}",
                    msg.dst
                )
            })
            .state
            .take();
        let label = msg.dst.label();
        let entry = &mut self.handlers[label.0 as usize];
        entry.count += 1;
        entry.last_tick = t;
        let name = entry.name.clone();
        let f = Rc::clone(&entry.f);

        let base = self.core.cfg.costs.event_dispatch
            + if is_new {
                self.core.cfg.costs.thread_create
            } else {
                0
            };
        let mut ctx = EventCtx {
            core: &mut self.core,
            lane: l,
            tid,
            event_name: &name,
            msg: &msg,
            cost: base,
            out: Vec::new(),
            terminated: false,
            state,
            stopped: false,
        };
        f(&mut ctx);

        let EventCtx {
            cost,
            out,
            terminated,
            state,
            stopped,
            ..
        } = ctx;

        // Every event ends in yield or yield_terminate (§2.1.1).
        let end_cost = if terminated {
            self.core.cfg.costs.thread_dealloc
        } else {
            self.core.cfg.costs.yield_
        };
        let total = cost + end_cost;
        let t_end = t + total;

        let lane = &mut self.core.lanes[l as usize];
        lane.busy += total;
        lane.events += 1;
        lane.free_at = t_end;
        self.core.stats.events_executed += 1;
        self.core.last_completion = self.core.last_completion.max(t_end);
        if let Some(tr) = &mut self.core.tracer {
            tr.record(TraceEvent::Exec {
                lane: l,
                label: label.0,
                tid: tid.0,
                start: t,
                end: t_end,
            });
        }

        if terminated {
            let lane = &mut self.core.lanes[l as usize];
            lane.dealloc_thread(tid);
            self.core.stats.threads_terminated += 1;
            // A freed context unparks one waiting creation.
            let lane = &mut self.core.lanes[l as usize];
            if let Some(parked) = lane.parked.pop_front() {
                lane.inbox.push_front(parked);
            }
        } else {
            self.core.lanes[l as usize]
                .threads
                .get_mut(&tid.0)
                .expect("live thread")
                .state = state;
        }

        // Emit collected effects at completion time.
        let src = NetworkId(l);
        let src_node = self.core.cfg.node_of(src);
        for o in out {
            match o {
                Outgoing::Msg(msg, delay) => {
                    let ready = t_end + delay;
                    let dst = msg.dst.nwid();
                    let bytes = msg.wire_bytes(self.core.cfg.net.msg_header_bytes);
                    let dst_node = self.core.cfg.node_of(dst);
                    let (depart, arrival) = if dst_node != src_node {
                        self.core.stats.msgs_inter_node += 1;
                        let depart = self.core.nics.inject(src_node, ready, bytes);
                        (depart, depart + self.core.cfg.net.inter_node_latency)
                    } else {
                        if self.core.cfg.accel_of(src) == self.core.cfg.accel_of(dst) {
                            self.core.stats.msgs_intra_accel += 1;
                        } else {
                            self.core.stats.msgs_intra_node += 1;
                        }
                        (ready, ready + self.core.cfg.msg_latency(src, dst))
                    };
                    if let Some(tr) = &mut self.core.tracer {
                        let id = tr.alloc_id();
                        tr.record(TraceEvent::MsgTransit {
                            id,
                            src: l,
                            dst: dst.0,
                            label: msg.dst.label().0,
                            depart,
                            arrive: arrival,
                        });
                    }
                    self.core.schedule(arrival, Action::Deliver(msg));
                }
                Outgoing::DramRead {
                    va,
                    nwords,
                    ret,
                    tag,
                } => {
                    self.core.stats.dram_reads += 1;
                    self.core.stats.dram_read_bytes += nwords as u64 * 8;
                    self.core.dram_issue(
                        t_end,
                        src,
                        va,
                        MemOp::Read {
                            va,
                            nwords,
                            ret,
                            tag,
                        },
                    );
                }
                Outgoing::DramWrite {
                    va,
                    words,
                    ack,
                    tag,
                } => {
                    self.core.stats.dram_writes += 1;
                    self.core.stats.dram_write_bytes += words.len() as u64 * 8;
                    self.core.dram_issue(
                        t_end,
                        src,
                        va,
                        MemOp::Write {
                            va,
                            words,
                            ack,
                            tag,
                        },
                    );
                }
                Outgoing::AtomicAddU64 {
                    va,
                    delta,
                    ret,
                    tag,
                } => {
                    self.core.stats.dram_writes += 1;
                    self.core.stats.dram_write_bytes += 8;
                    self.core
                        .dram_issue(t_end, src, va, MemOp::AddU64 { va, delta, ret, tag });
                }
                Outgoing::AtomicAddF64 {
                    va,
                    delta,
                    ret,
                    tag,
                } => {
                    self.core.stats.dram_writes += 1;
                    self.core.stats.dram_write_bytes += 8;
                    self.core
                        .dram_issue(t_end, src, va, MemOp::AddF64 { va, delta, ret, tag });
                }
            }
        }

        if stopped {
            self.core.stop = true;
        }

        let lane = &mut self.core.lanes[l as usize];
        if lane.inbox.is_empty() {
            lane.scheduled = false;
        } else {
            self.core.schedule(t_end, Action::LaneRun(l));
        }
    }
}

/// Execution context handed to event handlers: the UDWeave "machine
/// interface". Every operation charges its Table-2 cost.
pub struct EventCtx<'a> {
    core: &'a mut Core,
    lane: u32,
    tid: ThreadId,
    event_name: &'a str,
    msg: &'a Message,
    cost: u64,
    out: Vec<Outgoing>,
    terminated: bool,
    state: Option<Box<dyn Any>>,
    stopped: bool,
}

impl<'a> EventCtx<'a> {
    // ---- identity & introspection -------------------------------------

    /// This lane's network ID (`curNetworkID`).
    #[inline]
    pub fn nwid(&self) -> NetworkId {
        NetworkId(self.lane)
    }

    /// Node index of this lane.
    #[inline]
    pub fn node(&self) -> u32 {
        self.core.cfg.node_of(self.nwid())
    }

    #[inline]
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// `CEVNT`: the event word naming the currently executing event.
    #[inline]
    pub fn cur_evw(&self) -> EventWord {
        EventWord::with_thread(self.nwid(), self.tid, self.msg.dst.label())
    }

    /// An event word for another event of *this* thread.
    #[inline]
    pub fn self_event(&self, label: EventLabel) -> EventWord {
        EventWord::with_thread(self.nwid(), self.tid, label)
    }

    /// `CCONT`: the continuation word carried by the triggering message.
    #[inline]
    pub fn cont(&self) -> EventWord {
        self.msg.cont
    }

    #[inline]
    pub fn config(&self) -> &MachineConfig {
        &self.core.cfg
    }

    /// Current simulation time (start of this event).
    #[inline]
    pub fn now(&self) -> u64 {
        self.core.now
    }

    // ---- operands ------------------------------------------------------

    #[inline]
    pub fn args(&self) -> &[u64] {
        &self.msg.args
    }

    #[inline]
    pub fn arg(&self, i: usize) -> u64 {
        self.msg.args[i]
    }

    /// Operand interpreted as f64 bits.
    #[inline]
    pub fn argf(&self, i: usize) -> f64 {
        f64::from_bits(self.msg.args[i])
    }

    // ---- thread state ----------------------------------------------------

    /// Typed access to the thread's persistent state, default-initialized
    /// on first use.
    pub fn state_mut<T: Default + 'static>(&mut self) -> &mut T {
        if self.state.is_none() || self.state.as_ref().unwrap().downcast_ref::<T>().is_none() {
            self.state = Some(Box::<T>::default());
        }
        self.state.as_mut().unwrap().downcast_mut::<T>().unwrap()
    }

    /// Replace the thread state wholesale.
    pub fn set_state<T: 'static>(&mut self, v: T) {
        self.state = Some(Box::new(v));
    }

    /// Typed immutable view, `None` if never set with this type.
    pub fn state_ref<T: 'static>(&self) -> Option<&T> {
        self.state.as_ref().and_then(|b| b.downcast_ref::<T>())
    }

    // ---- sends -----------------------------------------------------------

    /// `send_event(eventWord, data..., continuationWord)`.
    pub fn send_event(&mut self, dst: EventWord, args: impl Into<Vec<u64>>, cont: EventWord) {
        self.send_event_after(0, dst, args, cont);
    }

    /// Send a message that enters the network `delay` cycles after this
    /// event completes. Models software timers used for termination
    /// re-polls; the lane is *not* kept busy during the delay.
    pub fn send_event_after(
        &mut self,
        delay: u64,
        dst: EventWord,
        args: impl Into<Vec<u64>>,
        cont: EventWord,
    ) {
        assert!(!dst.is_ignore(), "send_event to IGNORE");
        self.cost += self.core.cfg.costs.send_msg;
        self.out.push(Outgoing::Msg(
            Message {
                dst,
                args: args.into(),
                cont,
                src: self.nwid(),
            },
            delay,
        ));
    }

    /// Reply on the continuation if one was provided.
    pub fn send_reply(&mut self, args: impl Into<Vec<u64>>) {
        let c = self.cont();
        if !c.is_ignore() {
            self.send_event(c, args, EventWord::IGNORE);
        }
    }

    // ---- DRAM ------------------------------------------------------------

    /// Issue an asynchronous DRAM read of `nwords` (≤ 8) consecutive words;
    /// the response arrives at `ret_label` on *this* thread with the data
    /// words as operands.
    pub fn send_dram_read(&mut self, va: VAddr, nwords: usize, ret_label: EventLabel) {
        self.dram_read_impl(va, nwords, ret_label, None);
    }

    /// As [`Self::send_dram_read`], with `tag` appended after the data.
    pub fn send_dram_read_tagged(
        &mut self,
        va: VAddr,
        nwords: usize,
        ret_label: EventLabel,
        tag: u64,
    ) {
        self.dram_read_impl(va, nwords, ret_label, Some(tag));
    }

    fn dram_read_impl(
        &mut self,
        va: VAddr,
        nwords: usize,
        ret_label: EventLabel,
        tag: Option<u64>,
    ) {
        assert!((1..=8).contains(&nwords), "hardware reads 1..=8 words");
        self.cost += self.core.cfg.costs.send_dram;
        let ret = self.self_event(ret_label);
        self.out.push(Outgoing::DramRead {
            va,
            nwords: nwords as u8,
            ret,
            tag,
        });
    }

    /// Asynchronous DRAM write; optional ack event on this thread.
    pub fn send_dram_write(&mut self, va: VAddr, words: &[u64], ack_label: Option<EventLabel>) {
        self.dram_write_impl(va, words, ack_label, None)
    }

    pub fn send_dram_write_tagged(
        &mut self,
        va: VAddr,
        words: &[u64],
        ack_label: EventLabel,
        tag: u64,
    ) {
        self.dram_write_impl(va, words, Some(ack_label), Some(tag))
    }

    fn dram_write_impl(
        &mut self,
        va: VAddr,
        words: &[u64],
        ack_label: Option<EventLabel>,
        tag: Option<u64>,
    ) {
        assert!(!words.is_empty() && words.len() <= 8, "hardware writes 1..=8 words");
        self.cost += self.core.cfg.costs.send_dram;
        let ack = ack_label.map(|l| self.self_event(l));
        self.out.push(Outgoing::DramWrite {
            va,
            words: words.to_vec(),
            ack,
            tag,
        });
    }

    /// Memory-side atomic add on a u64 cell. In hardware this is realized
    /// in software (combining cache); the engine also offers it directly for
    /// library code and oracles. Timed like a one-word write.
    pub fn dram_fetch_add_u64(
        &mut self,
        va: VAddr,
        delta: u64,
        ret_label: Option<EventLabel>,
        tag: Option<u64>,
    ) {
        self.cost += self.core.cfg.costs.send_dram;
        let ret = ret_label.map(|l| self.self_event(l));
        self.out.push(Outgoing::AtomicAddU64 {
            va,
            delta,
            ret,
            tag,
        });
    }

    /// Memory-side atomic add on an f64 cell.
    pub fn dram_fetch_add_f64(
        &mut self,
        va: VAddr,
        delta: f64,
        ret_label: Option<EventLabel>,
        tag: Option<u64>,
    ) {
        self.cost += self.core.cfg.costs.send_dram;
        let ret = ret_label.map(|l| self.self_event(l));
        self.out.push(Outgoing::AtomicAddF64 {
            va,
            delta,
            ret,
            tag,
        });
    }

    /// Zero-time functional peek at global memory. **Not** part of the
    /// machine model: intended for assertions, oracles and trace output
    /// only. Timed code must use `send_dram_read`.
    pub fn dram_peek_u64(&self, va: VAddr) -> u64 {
        self.core.mem.read_u64(va).expect("peek fault")
    }

    // ---- scratchpad --------------------------------------------------------

    /// Scratchpad load (1 cycle), word-addressed.
    pub fn spm_read(&mut self, off: u32) -> u64 {
        assert!(off < self.core.cfg.spm_words, "scratchpad overflow");
        self.cost += self.core.cfg.costs.spd_access;
        self.core.lanes[self.lane as usize].spm.read(off)
    }

    /// Scratchpad store (1 cycle), word-addressed.
    pub fn spm_write(&mut self, off: u32, v: u64) {
        assert!(off < self.core.cfg.spm_words, "scratchpad overflow");
        self.cost += self.core.cfg.costs.spd_access;
        self.core.lanes[self.lane as usize].spm.write(off, v);
    }

    /// Raw bump-allocate `words` of this lane's scratchpad (spMalloc's
    /// backing primitive). Panics when the scratchpad is exhausted.
    pub fn spm_alloc(&mut self, words: u32) -> u32 {
        let lane = &mut self.core.lanes[self.lane as usize];
        let base = lane.spm_brk;
        assert!(
            base + words <= self.core.cfg.spm_words,
            "spMalloc: scratchpad exhausted on lane {} ({} + {} > {})",
            self.lane,
            base,
            words,
            self.core.cfg.spm_words
        );
        lane.spm_brk += words;
        base
    }

    // ---- control ------------------------------------------------------------

    /// Charge additional compute cycles (loop bodies, arithmetic).
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.cost += cycles;
    }

    /// End this event and deallocate the thread (`yield_terminate`).
    pub fn yield_terminate(&mut self) {
        self.terminated = true;
    }

    /// Stop the whole simulation after this event completes.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Emit a BASIM_PRINT-style trace line (if tracing is enabled).
    pub fn print(&mut self, text: &str) {
        if self.core.trace.is_some() {
            let line = format!(
                "[PRINT] {}: [NWID {}][TID {}][{}] {}",
                self.core.now, self.lane, self.tid.0, self.event_name, text
            );
            self.core.trace_line(line);
        }
    }

    // ---- observability (all zero-cost: never charges cycles) ---------------

    /// Open a named phase span at the current tick (e.g. a KVMSR map
    /// phase). Spans nest and repeat freely; [`Metrics::phase_cycles`]
    /// accumulates same-named spans. Free — charges no cycles.
    pub fn phase_begin(&mut self, name: &str) {
        self.core.phase_begin(name);
    }

    /// Close the most recent open phase span with this name. A close
    /// without a matching open is ignored. Free — charges no cycles.
    pub fn phase_end(&mut self, name: &str) {
        self.core.phase_end(name);
    }

    /// Add `delta` to a named custom counter reported in
    /// [`Metrics::custom`]. Free — charges no cycles.
    pub fn bump(&mut self, name: &'static str, delta: u64) {
        *self.core.custom.entry(name).or_insert(0) += delta;
    }

    /// Raise a named custom high-water mark to at least `value`. Free —
    /// charges no cycles.
    pub fn peak(&mut self, name: &'static str, value: u64) {
        let e = self.core.custom.entry(name).or_insert(0);
        *e = (*e).max(value);
    }

    /// Sample a running counter into the event trace (rendered as a
    /// Chrome-trace counter track). No-op unless event tracing is on;
    /// free — charges no cycles.
    pub fn trace_counter_add(&mut self, name: &'static str, delta: i64) {
        let now = self.core.now;
        if let Some(tr) = &mut self.core.tracer {
            tr.counter_add(name, delta, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn tiny() -> MachineConfig {
        MachineConfig::small(2, 2, 4)
    }

    #[test]
    fn call_return_composition() {
        // Listing 2 of the paper: e1 -> e2 (new thread, next lane) -> e3 (back).
        let mut eng = Engine::new(tiny());
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::default();

        let l3 = {
            let log = log.clone();
            eng.register(
                "e3",
                Rc::new(move |ctx| {
                    log.borrow_mut().push("e3");
                    ctx.yield_terminate();
                }),
            )
        };
        let l2 = {
            let log = log.clone();
            eng.register(
                "e2",
                Rc::new(move |ctx| {
                    log.borrow_mut().push("e2");
                    assert_eq!(ctx.args(), &[0, 1]);
                    ctx.send_reply([]);
                    ctx.yield_terminate();
                }),
            )
        };
        let l1 = {
            let log = log.clone();
            eng.register(
                "e1",
                Rc::new(move |ctx| {
                    log.borrow_mut().push("e1");
                    let evw = EventWord::new(ctx.nwid().next(), l2);
                    let ct = ctx.self_event(l3);
                    ctx.send_event(evw, [0, 1], ct);
                }),
            )
        };

        eng.send(EventWord::new(NetworkId(0), l1), [], EventWord::IGNORE);
        let report = eng.run();
        assert_eq!(&*log.borrow(), &["e1", "e2", "e3"]);
        assert_eq!(report.stats.events_executed, 3);
        assert_eq!(report.stats.threads_created, 2);
        assert_eq!(report.stats.threads_terminated, 2);
    }

    #[test]
    fn cost_model_exact() {
        // One event: dispatch(2) + send_msg(2) + yield(1) = 5 cycles busy.
        let mut eng = Engine::new(tiny());
        let sink = eng.register("sink", Rc::new(|ctx: &mut EventCtx| ctx.yield_terminate()));
        let l1 = eng.register(
            "one_send",
            Rc::new(move |ctx| {
                let w = EventWord::new(ctx.nwid().next(), sink);
                ctx.send_event(w, [], EventWord::IGNORE);
                ctx.yield_terminate();
            }),
        );
        eng.send(EventWord::new(NetworkId(0), l1), [], EventWord::IGNORE);
        let r = eng.run();
        // Event 1: starts t=0, cost = 2 (dispatch) + 2 (send) + 1 (dealloc) = 5.
        // Message departs t=5, intra-accel latency 4, arrives t=9.
        // Event 2: cost 2 + 1 = 3, finishes t=12.
        assert_eq!(r.final_tick, 12);
        assert_eq!(r.total_busy, 5 + 3);
    }

    #[test]
    fn inter_node_latency_applies() {
        let cfg = tiny();
        let lanes_per_node = cfg.lanes_per_node();
        let mut eng = Engine::new(cfg);
        let sink = eng.register("sink", Rc::new(|ctx: &mut EventCtx| ctx.yield_terminate()));
        let l1 = eng.register(
            "cross",
            Rc::new(move |ctx| {
                let w = EventWord::new(NetworkId(lanes_per_node), sink); // node 1
                ctx.send_event(w, [], EventWord::IGNORE);
                ctx.yield_terminate();
            }),
        );
        eng.send(EventWord::new(NetworkId(0), l1), [], EventWord::IGNORE);
        let r = eng.run();
        // depart t=5 via NIC (72 bytes / 2048 per cycle -> 1 cycle) = 6,
        // + 1000 latency = arrives 1006, runs 3 cycles.
        assert_eq!(r.final_tick, 1009);
        assert_eq!(r.stats.msgs_inter_node, 1);
    }

    #[test]
    fn dram_read_roundtrip_with_latency() {
        let mut eng = Engine::new(tiny());
        eng.mem_mut().min_block = 64;
        let a = eng.mem_mut().alloc(4096, 0, 1, 4096).unwrap();
        eng.mem_mut().write_words(a, &[10, 20, 30]).unwrap();

        let got: Rc<RefCell<Vec<u64>>> = Rc::default();
        let got2 = got.clone();
        let ret = eng.register(
            "ret",
            Rc::new(move |ctx| {
                got2.borrow_mut().extend_from_slice(ctx.args());
                ctx.yield_terminate();
            }),
        );
        let start = eng.register(
            "start",
            Rc::new(move |ctx| {
                let a = VAddr(ctx.arg(0));
                ctx.send_dram_read(a, 3, ret);
            }),
        );
        eng.send(EventWord::new(NetworkId(0), start), [a.0], EventWord::IGNORE);
        let r = eng.run();
        assert_eq!(&*got.borrow(), &[10, 20, 30]);
        // Issue done t = 2+2+1 = 5; request hop 30; channel: 64B at 4700B/cy
        // = 1 cycle + 200 latency => served at 5+30+1+200 = 236; return hop 30
        // => arrives 266; handler runs 3 cycles (2+1).
        assert_eq!(r.final_tick, 269);
        assert_eq!(r.stats.dram_reads, 1);
    }

    #[test]
    fn dram_write_and_ack() {
        let mut eng = Engine::new(tiny());
        let a = eng.mem_mut().alloc(4096, 0, 1, 4096).unwrap();
        let acked: Rc<RefCell<u32>> = Rc::default();
        let acked2 = acked.clone();
        let ack = eng.register(
            "ack",
            Rc::new(move |ctx| {
                *acked2.borrow_mut() += 1;
                ctx.yield_terminate();
            }),
        );
        let start = eng.register(
            "start",
            Rc::new(move |ctx| {
                let a = VAddr(ctx.arg(0));
                ctx.send_dram_write(a.word(2), &[99], Some(ack));
            }),
        );
        eng.send(EventWord::new(NetworkId(0), start), [a.0], EventWord::IGNORE);
        eng.run();
        assert_eq!(*acked.borrow(), 1);
        assert_eq!(eng.mem().read_u64(a.word(2)).unwrap(), 99);
    }

    #[test]
    fn thread_state_persists_across_events() {
        #[derive(Default)]
        struct Acc {
            sum: u64,
            n: u64,
        }
        let mut eng = Engine::new(tiny());
        let done: Rc<RefCell<u64>> = Rc::default();
        let done2 = done.clone();
        // The thread accumulates across three events of itself, self-sending
        // follow-ups (same thread context, state preserved by yield).
        let step = eng.register(
            "step",
            Rc::new(move |ctx| {
                let v = ctx.arg(0);
                let acc = ctx.state_mut::<Acc>();
                acc.sum += v;
                acc.n += 1;
                if acc.n == 3 {
                    let sum = acc.sum;
                    *done2.borrow_mut() = sum;
                    ctx.yield_terminate();
                } else {
                    let me = ctx.cur_evw();
                    ctx.send_event(me, [v + 1], EventWord::IGNORE);
                }
            }),
        );
        eng.send(EventWord::new(NetworkId(1), step), [5], EventWord::IGNORE);
        eng.run();
        assert_eq!(*done.borrow(), 5 + 6 + 7);
    }

    #[test]
    fn lane_serializes_events() {
        // Two messages to the same lane: second starts after first ends.
        let mut eng = Engine::new(tiny());
        let times: Rc<RefCell<Vec<u64>>> = Rc::default();
        let t2 = times.clone();
        let busy = eng.register(
            "busy",
            Rc::new(move |ctx| {
                t2.borrow_mut().push(ctx.now());
                ctx.charge(100);
                ctx.yield_terminate();
            }),
        );
        let kick = eng.register(
            "kick",
            Rc::new(move |ctx| {
                let w = EventWord::new(NetworkId(2), busy);
                ctx.send_event(w, [], EventWord::IGNORE);
                ctx.send_event(w, [], EventWord::IGNORE);
                ctx.yield_terminate();
            }),
        );
        eng.send(EventWord::new(NetworkId(0), kick), [], EventWord::IGNORE);
        eng.run();
        let ts = times.borrow();
        assert_eq!(ts.len(), 2);
        // First event takes 2 + 100 + 1 = 103 cycles.
        assert_eq!(ts[1] - ts[0], 103);
    }

    #[test]
    fn stop_halts_simulation() {
        let mut eng = Engine::new(tiny());
        let spin = eng.register(
            "spin",
            Rc::new(move |ctx| {
                let me = ctx.cur_evw();
                if ctx.now() > 10_000 {
                    ctx.stop();
                } else {
                    ctx.send_event(me, [], EventWord::IGNORE);
                }
            }),
        );
        eng.send(EventWord::new(NetworkId(0), spin), [], EventWord::IGNORE);
        let r = eng.run();
        assert!(r.final_tick > 10_000);
        assert!(r.final_tick < 20_000);
    }

    #[test]
    fn event_limit_guards_runaway() {
        let mut eng = Engine::new(tiny());
        let spin = eng.register(
            "spin",
            Rc::new(move |ctx| {
                let me = ctx.cur_evw();
                ctx.send_event(me, [], EventWord::IGNORE);
            }),
        );
        eng.set_event_limit(50);
        eng.send(EventWord::new(NetworkId(0), spin), [], EventWord::IGNORE);
        let r = eng.run();
        assert_eq!(r.stats.events_executed, 50);
    }

    #[test]
    fn thread_table_full_parks_and_resumes() {
        let mut cfg = tiny();
        cfg.max_threads_per_lane = 2;
        let mut eng = Engine::new(cfg);
        let ran: Rc<RefCell<u32>> = Rc::default();
        let ran2 = ran.clone();
        // Each hold thread waits for a poke before terminating.
        let poke = eng.register(
            "poke",
            Rc::new(move |ctx| {
                *ran2.borrow_mut() += 1;
                ctx.yield_terminate();
            }),
        );
        let hold = eng.register(
            "hold",
            Rc::new(move |ctx| {
                // Self-poke after a while: second event of same thread.
                let me = ctx.self_event(poke);
                ctx.charge(50);
                ctx.send_event(me, [], EventWord::IGNORE);
            }),
        );
        let kick = eng.register(
            "kick",
            Rc::new(move |ctx| {
                let w = EventWord::new(NetworkId(1), hold);
                for _ in 0..4 {
                    ctx.send_event(w, [], EventWord::IGNORE);
                }
                ctx.yield_terminate();
            }),
        );
        eng.send(EventWord::new(NetworkId(0), kick), [], EventWord::IGNORE);
        let r = eng.run();
        assert_eq!(*ran.borrow(), 4, "all four threads eventually ran");
        assert!(r.stats.thread_table_stalls > 0);
    }

    #[test]
    fn determinism() {
        fn run_once() -> (u64, u64) {
            let mut eng = Engine::new(tiny());
            let sink = eng.register("sink", Rc::new(|ctx: &mut EventCtx| ctx.yield_terminate()));
            let fan = eng.register(
                "fan",
                Rc::new(move |ctx| {
                    let n = ctx.config().total_lanes();
                    for i in 0..n {
                        ctx.send_event(EventWord::new(NetworkId(i), sink), [i as u64], EventWord::IGNORE);
                    }
                    ctx.yield_terminate();
                }),
            );
            eng.send(EventWord::new(NetworkId(0), fan), [], EventWord::IGNORE);
            let r = eng.run();
            (r.final_tick, r.stats.events_executed)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn trace_lines_have_artifact_shape() {
        let mut eng = Engine::new(tiny());
        eng.enable_trace();
        let hello = eng.register(
            "updown_init",
            Rc::new(|ctx: &mut EventCtx| {
                ctx.print("initialization done");
                ctx.yield_terminate();
            }),
        );
        eng.send(EventWord::new(NetworkId(0), hello), [], EventWord::IGNORE);
        eng.run();
        let t = eng.trace();
        assert_eq!(t.len(), 1);
        assert!(t[0].contains("[NWID 0]"));
        assert!(t[0].contains("[updown_init]"));
        assert!(t[0].contains("initialization done"));
    }

    #[test]
    fn fetch_add_f64_returns_old() {
        let mut eng = Engine::new(tiny());
        let a = eng.mem_mut().alloc(4096, 0, 1, 4096).unwrap();
        eng.mem_mut().write_f64(a, 1.5).unwrap();
        let old: Rc<RefCell<f64>> = Rc::default();
        let old2 = old.clone();
        let ret = eng.register(
            "ret",
            Rc::new(move |ctx| {
                *old2.borrow_mut() = ctx.argf(0);
                ctx.yield_terminate();
            }),
        );
        let go = eng.register(
            "go",
            Rc::new(move |ctx| {
                ctx.dram_fetch_add_f64(VAddr(ctx.arg(0)), 2.25, Some(ret), None);
            }),
        );
        eng.send(EventWord::new(NetworkId(0), go), [a.0], EventWord::IGNORE);
        eng.run();
        assert_eq!(*old.borrow(), 1.5);
        assert_eq!(eng.mem().read_f64(a).unwrap(), 3.75);
    }

    /// A program touching every traced subsystem — fan-out messages
    /// (local + remote), DRAM write/read, phases, custom and sampled
    /// counters — run with and without the event trace.
    fn observed_run(traced: bool) -> Engine {
        let mut eng = Engine::new(tiny());
        if traced {
            eng.enable_event_trace();
        }
        let a = eng.mem_mut().alloc(4096, 0, 1, 4096).unwrap();
        let sink = eng.register("sink", Rc::new(|ctx: &mut EventCtx| ctx.yield_terminate()));
        // DRAM responses come back to the issuing thread: count both
        // (write ack + read data) before terminating.
        let fin = eng.register(
            "fin",
            Rc::new(|ctx: &mut EventCtx| {
                let n = ctx.state_mut::<u64>();
                *n += 1;
                if *n == 2 {
                    ctx.trace_counter_add("inflight", -1);
                    ctx.phase_end("io");
                    ctx.yield_terminate();
                }
            }),
        );
        let go = eng.register(
            "go",
            Rc::new(move |ctx| {
                ctx.phase_begin("io");
                ctx.bump("kicks", 1);
                ctx.trace_counter_add("inflight", 1);
                let n = ctx.config().total_lanes();
                for i in 0..n {
                    ctx.send_event(EventWord::new(NetworkId(i), sink), [i as u64], EventWord::IGNORE);
                }
                ctx.send_dram_write(VAddr(a.0), &[7], Some(fin));
                ctx.send_dram_read(VAddr(a.0), 1, fin);
            }),
        );
        eng.send(EventWord::new(NetworkId(0), go), [], EventWord::IGNORE);
        eng.run();
        eng
    }

    #[test]
    fn event_trace_has_zero_observer_effect() {
        let off = observed_run(false);
        let on = observed_run(true);
        assert!(off.event_trace().is_empty());
        assert!(!on.event_trace().is_empty());
        // Byte-identical metrics: same ticks, counters, phases, custom.
        assert_eq!(off.metrics().to_json(), on.metrics().to_json());
    }

    #[test]
    fn event_trace_covers_all_subsystems() {
        let eng = observed_run(true);
        let evs = eng.event_trace();
        let mut execs = 0;
        let mut msgs = 0;
        let mut drams = 0;
        let mut counters = 0;
        for e in evs {
            match e {
                TraceEvent::Exec { start, end, .. } => {
                    assert!(start <= end);
                    execs += 1;
                }
                TraceEvent::MsgTransit { depart, arrive, .. } => {
                    assert!(depart < arrive);
                    msgs += 1;
                }
                TraceEvent::Dram { .. } => drams += 1,
                TraceEvent::Counter { .. } => counters += 1,
            }
        }
        // go + 16 sinks + dram ack + dram data, at least.
        assert!(execs >= 18, "execs = {execs}");
        assert!(msgs >= 16, "msgs = {msgs}");
        assert_eq!(drams, 6, "2 transactions x 3 stages");
        assert_eq!(counters, 2);
        assert_eq!(eng.phases().len(), 1);
        assert!(!eng.phases()[0].is_open());
    }
}
