#![forbid(unsafe_code)]
//! Figure 10 (+ Table 11): ingestion (TFORM parse + PGA insert) scaling
//! over machine size for the `data <m>` multiplier family.
//!
//! ```text
//! cargo run --release -p bench --bin figure10 -- [--nodes 32]
//!     [--base-records 20000] [--seed 0] [--threads 1] [--topology uniform] [--full]
//!     [--sanitize] [--race] [--spec] [--cost]
//!     [--trace out.trace.json] [--metrics-json out.metrics.json]
//! ```

use bench::{Checkpoint, Cli, CostGate, Exporter, RaceGate, ReplayGate, Sanitizer, SpecGate, StdOpts, node_sweep};
use updown_apps::harness::{print_speedup_table, Series};
use updown_apps::ingest::{datagen, run_ingest, IngestConfig};

fn main() {
    let cli = Cli::parse();
    let opts = StdOpts::parse(&cli, (32, 256), (0, 0));
    let full = opts.full;
    let base: usize = cli.get("base-records", if full { 400_000 } else { 60_000 });
    let nodes = node_sweep(opts.max_nodes);
    let san = Sanitizer::from_cli(&cli);
    let rg = RaceGate::from_cli(&cli);
    let spg = SpecGate::from_cli(&cli);
    let ck = Checkpoint::from_cli(&cli);
    let rp = ReplayGate::from_cli(&cli);
    let cg = CostGate::from_cli(&cli);
    let mut ex = Exporter::from_cli(&cli);

    println!("Figure 10 reproduction — ingestion scaling (records = {base} x multiplier)");
    let mut series = Vec::new();
    for (label, mult) in [
        ("data 0.01x", 0.01),
        ("data 0.1x", 0.1),
        ("data", 1.0),
        ("data 2x", 2.0),
    ] {
        let ds = datagen::sized(base, mult, (base / 4) as u64, 13 ^ opts.seed);
        let mut s = Series::new(label);
        for &n in &nodes {
            let mut cfg = IngestConfig::new(n);
            cfg.machine = opts.machine(n);
            san.arm(&format!("ingest {label} nodes={n}"), &mut cfg.machine);
            rg.arm(&format!("ingest {label} nodes={n}"), &mut cfg.machine);
            spg.arm(&format!("ingest {label} nodes={n}"), &updown_apps::ingest::spec(), &mut cfg.machine);
            ck.arm(&mut cfg.machine);
            rp.arm(&mut cfg.machine);
            let w = cg.enabled().then(|| updown_apps::ingest::workload(&ds, &cfg));
            cg.arm(&format!("ingest {label} nodes={n}"), &updown_apps::ingest::spec(), w, &mut cfg.machine);
            cfg.trace = ex.want_trace();
            let t0 = std::time::Instant::now();
            let r = run_ingest(&ds, &cfg);
            let secs = t0.elapsed().as_secs_f64();
            ex.export(&format!("ingest {label} nodes={n}"), &r.report, r.trace_json.as_deref());
            eprintln!(
                "  {label} nodes={n}: {} ticks ({:.1} MRecords/s, phase1 {} / phase2 {}, {} host)",
                r.final_tick,
                r.records_per_second(&cfg.machine) / 1e6,
                r.phase1_tick,
                r.phase2_tick - r.phase1_tick,
                bench::cli::host_rate(r.report.stats.events_executed, secs),
            );
            s.push(n, r.final_tick);
        }
        series.push(s);
    }
    print_speedup_table("Figure 10 / Table 11: ingestion speedup", "nodes", &series);
    println!(
        "\n(the paper reports 76.8 TB/s at 256 full nodes; the shape to match is\n\
         small datasets saturating early and large ones scaling further)"
    );
    let dirty = san.dirty();
    if rg.dirty() || spg.dirty() || rp.dirty() || cg.dirty() || dirty {
        std::process::exit(1);
    }
}
