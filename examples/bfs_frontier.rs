//! BFS with per-accelerator frontiers (§4.2) on a small social-style
//! graph, printing the artifact-style per-round log.
//!
//! `cargo run --release --example bfs_frontier -- [scale]`

use updown_apps::bfs::{run_bfs, BfsConfig};
use updown_graph::generators::{rmat, RmatParams};
use updown_graph::preprocess::dedup_sort;
use updown_graph::{algorithms, Csr};
use updown_sim::MachineConfig;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let el = dedup_sort(rmat(scale, RmatParams::default(), 5).symmetrize());
    let g = Csr::from_edges(&el);
    println!("RMAT scale-{scale} symmetrized: n = {}, m = {}", g.n(), g.m());

    let mut cfg = BfsConfig::new(2, 0);
    cfg.machine = MachineConfig::small(2, 8, 32);
    let res = run_bfs(&g, &cfg);
    assert_eq!(res.dist, algorithms::bfs(&g, 0), "verified against oracle");

    println!("\nBFS Start");
    let mut prev = 0u64;
    for (i, &t) in res.round_ticks.iter().enumerate() {
        println!("  [Itera {i}]: round finished at tick {t} (+{})", t - prev);
        prev = t;
    }
    println!("BFS finish: {} rounds, {} traversed edges", res.rounds, res.traversed_edges);
    let reached = res.dist.iter().filter(|&&d| d != u64::MAX).count();
    println!(
        "reached {reached}/{} vertices; simulated time {:.3} ms; {:.3} GTEPS",
        g.n(),
        cfg.machine.ticks_to_seconds(res.final_tick) * 1e3,
        res.gteps(&cfg.machine)
    );
}
