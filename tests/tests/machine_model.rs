//! Machine-model behavioral tests: contention, latency tiers, scratchpad
//! sharing, backpressure — the physics the figures depend on.

use std::sync::Mutex;
use std::sync::Arc;

use udweave::prelude::*;
use updown_sim::{Engine, MachineConfig, MemoryConfig, NetworkConfig};

fn fanout_reads(nodes: u32, mem_nodes: u32, reads: u64, bw: u64) -> u64 {
    let mut cfg = MachineConfig::small(nodes, 2, 8);
    cfg.mem = MemoryConfig {
        dram_latency: 200,
        node_bytes_per_cycle: bw,
        access_granularity: 64,
    };
    let lanes = cfg.total_lanes();
    let mut eng = Engine::new(cfg);
    let data = eng
        .mem_mut()
        .alloc(reads * 8 + 64, 0, mem_nodes, 4096)
        .unwrap();
    let per_lane = reads / lanes as u64;
    // The issuing thread stays alive until all of its responses arrive.
    let ret = udweave::event::<u64>(&mut eng, "ret", move |ctx, got| {
        *got += 1;
        if *got == per_lane {
            ctx.yield_terminate();
        }
    });
    let go = simple_event(&mut eng, "go", move |ctx| {
        let base = ctx.arg(0);
        for i in 0..per_lane {
            ctx.send_dram_read(VAddr(data.0).word(base + i), 1, ret);
        }
    });
    let kick = simple_event(&mut eng, "kick", move |ctx| {
        for l in 0..lanes {
            ctx.send_event(evw_new(NetworkId(l), go), [l as u64 * per_lane], IGNRCONT);
        }
        ctx.yield_terminate();
    });
    eng.send(evw_new(NetworkId(0), kick), [], IGNRCONT);
    eng.run().final_tick
}

#[test]
fn wider_striping_relieves_channel_contention() {
    // Same access stream, 1 vs 4 memory nodes under tight bandwidth:
    // the Figure 12 mechanism in isolation.
    let narrow = fanout_reads(4, 1, 20000, 64);
    let wide = fanout_reads(4, 4, 20000, 64);
    assert!(
        wide * 2 < narrow,
        "4-way striping ({wide}) should be well under half of 1-way ({narrow})"
    );
}

#[test]
fn latency_tiers_order() {
    // One message at each tier; completion times must order
    // intra-accel < intra-node < inter-node.
    fn one_hop(dst_pick: impl Fn(&MachineConfig) -> NetworkId + Send + Sync + 'static) -> u64 {
        let mut eng = Engine::new(MachineConfig::small(2, 2, 4));
        let sink = simple_event(&mut eng, "sink", |ctx| ctx.yield_terminate());
        let go = simple_event(&mut eng, "go", move |ctx| {
            let dst = dst_pick(ctx.config());
            ctx.send_event(evw_new(dst, sink), [], IGNRCONT);
            ctx.yield_terminate();
        });
        eng.send(evw_new(NetworkId(0), go), [], IGNRCONT);
        eng.run().final_tick
    }
    let same_accel = one_hop(|_| NetworkId(1));
    let same_node = one_hop(|cfg| cfg.nwid(0, 1, 0));
    let cross_node = one_hop(|cfg| cfg.nwid(1, 0, 0));
    assert!(same_accel < same_node && same_node < cross_node);
}

#[test]
fn nic_contention_slows_bursts() {
    // A burst of inter-node messages beyond the injection bandwidth takes
    // longer than the same count under a fat NIC.
    fn burst(nic_bw: u64) -> u64 {
        let mut cfg = MachineConfig::small(2, 2, 8);
        cfg.net = NetworkConfig::builder().nic_bytes_per_cycle(nic_bw).build();
        let lanes_per_node = cfg.lanes_per_node();
        let mut eng = Engine::new(cfg);
        let sink = simple_event(&mut eng, "sink", |ctx| ctx.yield_terminate());
        let go = simple_event(&mut eng, "go", move |ctx| {
            for i in 0..2000u32 {
                let dst = NetworkId(lanes_per_node + (i % lanes_per_node));
                ctx.send_event(evw_new(dst, sink), [i as u64], IGNRCONT);
            }
            ctx.yield_terminate();
        });
        eng.send(evw_new(NetworkId(0), go), [], IGNRCONT);
        eng.run().final_tick
    }
    let thin = burst(72); // 1 message per cycle
    let fat = burst(72 * 64);
    assert!(thin > fat + 1000, "thin NIC ({thin}) must queue vs fat ({fat})");
}

#[test]
fn scratchpad_is_lane_shared_across_threads() {
    // Two threads on the same lane see the same scratchpad (it is lane
    // memory, not thread memory).
    let mut eng = Engine::new(MachineConfig::small(1, 1, 2));
    let seen: Arc<Mutex<u64>> = Arc::default();
    let s2 = seen.clone();
    let reader = simple_event(&mut eng, "reader", move |ctx| {
        *s2.lock().unwrap() = ctx.spm_read(5);
        ctx.yield_terminate();
    });
    let writer = simple_event(&mut eng, "writer", move |ctx| {
        ctx.spm_write(5, 77);
        // New thread, same lane.
        ctx.send_event(evw_new(ctx.nwid(), reader), [], IGNRCONT);
        ctx.yield_terminate();
    });
    eng.send(evw_new(NetworkId(0), writer), [], IGNRCONT);
    eng.run();
    assert_eq!(*seen.lock().unwrap(), 77);
}

#[test]
fn delayed_sends_fire_in_order() {
    let mut eng = Engine::new(MachineConfig::small(1, 1, 2));
    let order: Arc<Mutex<Vec<u64>>> = Arc::default();
    let o2 = order.clone();
    let mark = simple_event(&mut eng, "mark", move |ctx| {
        o2.lock().unwrap().push(ctx.arg(0));
        ctx.yield_terminate();
    });
    let go = simple_event(&mut eng, "go", move |ctx| {
        ctx.send_event_after(500, evw_new(ctx.nwid(), mark), [2u64], IGNRCONT);
        ctx.send_event_after(100, evw_new(ctx.nwid(), mark), [1u64], IGNRCONT);
        ctx.send_event_after(900, evw_new(ctx.nwid(), mark), [3u64], IGNRCONT);
        ctx.yield_terminate();
    });
    eng.send(evw_new(NetworkId(0), go), [], IGNRCONT);
    eng.run();
    assert_eq!(&*order.lock().unwrap(), &[1, 2, 3]);
}

#[test]
fn event_limit_is_a_hard_stop() {
    let mut eng = Engine::new(MachineConfig::small(1, 1, 1));
    let spin = simple_event(&mut eng, "spin", move |ctx| {
        let me = ctx.cur_evw();
        ctx.send_event(me, [], IGNRCONT);
    });
    eng.set_event_limit(123);
    eng.send(evw_new(NetworkId(0), spin), [], IGNRCONT);
    let r = eng.run();
    assert_eq!(r.stats.events_executed, 123);
}

#[test]
fn memory_free_and_realloc() {
    let mut eng = Engine::new(MachineConfig::small(2, 1, 2));
    let a = eng.mem_mut().alloc(8192, 0, 2, 4096).unwrap();
    eng.mem_mut().write_u64(a, 42).unwrap();
    drammalloc::dram_free(&mut eng, a).unwrap();
    let b = eng.mem_mut().alloc(8192, 0, 2, 4096).unwrap();
    assert_ne!(a.0, b.0, "fresh VA space (no stale aliasing)");
    assert!(eng.mem().read_u64(a).is_err(), "freed region faults");
    assert_eq!(eng.mem().read_u64(b).unwrap(), 0, "new region zeroed");
}

#[test]
fn utilization_and_stats_consistency() {
    let mut eng = Engine::new(MachineConfig::small(1, 2, 8));
    let sink = simple_event(&mut eng, "sink", |ctx| {
        ctx.charge(50);
        ctx.yield_terminate();
    });
    let go = simple_event(&mut eng, "go", move |ctx| {
        for i in 0..16u32 {
            ctx.send_event(evw_new(NetworkId(i), sink), [], IGNRCONT);
        }
        ctx.yield_terminate();
    });
    eng.send(evw_new(NetworkId(0), go), [], IGNRCONT);
    let r = eng.run();
    assert_eq!(r.stats.events_executed, 17);
    assert_eq!(r.active_lanes, 16);
    assert_eq!(r.stats.threads_created, 17);
    assert_eq!(r.stats.threads_terminated, 17);
    assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
    assert_eq!(
        r.stats.total_msgs(),
        16,
        "16 sends (host injection not counted)"
    );
}

#[test]
fn thread_backpressure_preserves_all_work() {
    // 200 creations onto a 4-context lane: parking must not lose any.
    let mut cfg = MachineConfig::small(1, 1, 2);
    cfg.max_threads_per_lane = 4;
    let mut eng = Engine::new(cfg);
    let count: Arc<Mutex<u64>> = Arc::default();
    let c2 = count.clone();
    // Two-phase threads hold their context alive long enough that the
    // 4-slot table fills and later creations park.
    let fin = simple_event(&mut eng, "fin", move |ctx| {
        *c2.lock().unwrap() += 1;
        ctx.yield_terminate();
    });
    let work = simple_event(&mut eng, "work", move |ctx| {
        let me = ctx.self_event(fin);
        ctx.send_event_after(200, me, [], IGNRCONT);
    });
    let go = simple_event(&mut eng, "go", move |ctx| {
        for i in 0..200u64 {
            ctx.send_event(evw_new(NetworkId(1), work), [i], IGNRCONT);
        }
        ctx.yield_terminate();
    });
    eng.send(evw_new(NetworkId(0), go), [], IGNRCONT);
    let r = eng.run();
    assert_eq!(*count.lock().unwrap(), 200);
    assert!(r.stats.thread_table_stalls > 0, "parking exercised");
}
