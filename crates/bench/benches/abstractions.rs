//! Library abstraction micro-benchmarks: KVMSR launch overhead vs lane
//! count, SHT operation throughput, combining cache, and the collective
//! tree.

use bench::timing::bench_host;
use std::sync::Mutex;
use std::sync::Arc;

use drammalloc::Layout;
use kvmsr::{JobSpec, Kvmsr, Outcome};
use udweave::{simple_event, LaneSet, TreeComm};
use updown_sim::{Engine, EventWord, MachineConfig, NetworkId};

/// Simulated ticks to launch-and-retire an empty KVMSR job over `lanes`.
fn kvmsr_launch_ticks(lanes: u32) -> u64 {
    let mut eng = Engine::new(MachineConfig::small(lanes.div_ceil(128).max(1), 4, 32));
    let rt = Kvmsr::install(&mut eng);
    let set = LaneSet::new(NetworkId(0), lanes);
    let job = rt.define_job(JobSpec::new("empty", set, |_c, _t, _r| Outcome::Done));
    let fin = simple_event(&mut eng, "fin", |ctx| ctx.stop());
    let (evw, args) = rt.start_msg(job, 0, 0);
    eng.send(evw, args, EventWord::new(NetworkId(0), fin));
    eng.run().final_tick
}

fn sht_insert_run(n: u64) -> usize {
    let mut eng = Engine::new(MachineConfig::small(1, 2, 8));
    let lib = updown_graph::ShtLib::install(&mut eng);
    let set = LaneSet::all(eng.config());
    let sht = lib.create(&mut eng, set, 64, 16, Layout::cyclic(1));
    let lib2 = lib.clone();
    let go = simple_event(&mut eng, "go", move |ctx| {
        for k in 0..n {
            lib2.insert(ctx, sht, k * 7 + 1, k, EventWord::IGNORE);
        }
        ctx.yield_terminate();
    });
    eng.send(EventWord::new(NetworkId(0), go), [], EventWord::IGNORE);
    eng.run();
    lib.len(sht)
}

fn tree_broadcast_ticks(lanes: u32) -> u64 {
    let mut eng = Engine::new(MachineConfig::small(lanes.div_ceil(128).max(1), 4, 32));
    let user = simple_event(&mut eng, "user", |ctx| {
        ctx.send_reply([1u64, 0]);
        ctx.yield_terminate();
    });
    let tree = TreeComm::install(&mut eng, "t", 8);
    let set = LaneSet::new(NetworkId(0), lanes);
    let done: Arc<Mutex<bool>> = Arc::default();
    let d = done.clone();
    let fin = simple_event(&mut eng, "fin", move |ctx| {
        *d.lock().unwrap() = true;
        ctx.stop();
    });
    let kick = simple_event(&mut eng, "kick", move |ctx| {
        let args = tree.start_args(set, user, &[]);
        let cont = EventWord::new(ctx.nwid(), fin);
        ctx.send_event(tree.start_evw(set), args, cont);
        ctx.yield_terminate();
    });
    eng.send(EventWord::new(NetworkId(0), kick), [], EventWord::IGNORE);
    let r = eng.run();
    assert!(*done.lock().unwrap());
    r.final_tick
}

fn main() {
    // Report the simulated launch-overhead curve once (this is the
    // interesting number; the host-time loops below measure sim speed).
    println!("\nKVMSR empty-job launch overhead (simulated ticks):");
    for lanes in [16u32, 128, 1024, 4096] {
        println!("  {lanes:>6} lanes: {:>8}", kvmsr_launch_ticks(lanes));
    }
    println!("Collective tree broadcast+ack (simulated ticks):");
    for lanes in [16u32, 128, 1024, 4096] {
        println!("  {lanes:>6} lanes: {:>8}", tree_broadcast_ticks(lanes));
    }

    for lanes in [16u32, 1024] {
        bench_host(&format!("kvmsr_launch/{lanes}_lanes"), 10, || {
            kvmsr_launch_ticks(lanes)
        });
    }
    bench_host("sht_insert_512", 10, || {
        let n = sht_insert_run(512);
        assert_eq!(n, 512);
        n
    });
}
