//! Host-CPU baselines: multithreaded PR / BFS / TC implementations run on
//! the actual host, standing in for the paper's Perlmutter / EOS
//! comparison points. They validate the simulated algorithms and provide
//! the measured GUPS/GTEPS rates the comparison tables report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use updown_graph::Csr;

/// Wall-time measurement of a closure, in seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let share = n.div_ceil(parts).max(1);
    (0..parts)
        .map(|p| (p * share).min(n)..((p + 1) * share).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Threaded push PageRank: per-thread partial next-vectors, merged.
pub fn pagerank_parallel(g: &Csr, iters: u32, damping: f64, threads: usize) -> Vec<f64> {
    let n = g.n() as usize;
    let mut pr = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let ranges = chunk_ranges(n, threads);
        let partials: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|r| {
                    let pr = &pr;
                    let r = r.clone();
                    s.spawn(move || {
                        let mut next = vec![0.0f64; n];
                        for v in r {
                            let deg = g.degree(v as u32);
                            if deg == 0 {
                                continue;
                            }
                            let contrib = pr[v] / deg as f64;
                            for &d in g.neigh(v as u32) {
                                next[d as usize] += contrib;
                            }
                        }
                        next
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let base = (1.0 - damping) / n as f64;
        let mut next = vec![base; n];
        for p in &partials {
            for (x, y) in next.iter_mut().zip(p) {
                *x += damping * y;
            }
        }
        pr = next;
    }
    pr
}

/// Threaded level-synchronous BFS with an atomic visited bitmap.
pub fn bfs_parallel(g: &Csr, root: u32, threads: usize) -> Vec<u64> {
    let n = g.n() as usize;
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    dist[root as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![root];
    let mut level = 0u64;
    while !frontier.is_empty() {
        level += 1;
        let ranges = chunk_ranges(frontier.len(), threads);
        let nexts: Vec<Vec<u32>> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|r| {
                    let frontier = &frontier;
                    let dist = &dist;
                    let r = r.clone();
                    s.spawn(move || {
                        let mut next = Vec::new();
                        for &v in &frontier[r] {
                            for &d in g.neigh(v) {
                                if dist[d as usize]
                                    .compare_exchange(
                                        u64::MAX,
                                        level,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                                {
                                    next.push(d);
                                }
                            }
                        }
                        next
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        frontier = nexts.concat();
    }
    dist.into_iter().map(|a| a.into_inner()).collect()
}

/// Threaded triangle counting (sorted undirected CSR).
pub fn tc_parallel(g: &Csr, threads: usize) -> u64 {
    let n = g.n() as usize;
    let ranges = chunk_ranges(n, threads);
    let counts: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let r = r.clone();
                s.spawn(move || {
                    let mut c = 0u64;
                    for v in r {
                        let v = v as u32;
                        for &u in g.neigh(v) {
                            if u >= v {
                                break;
                            }
                            c += intersect_less(g.neigh(v), g.neigh(u), u);
                        }
                    }
                    c
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    counts.into_iter().sum()
}

fn intersect_less(a: &[u32], b: &[u32], cap: u32) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() && a[i] < cap && b[j] < cap {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use updown_graph::algorithms;
    use updown_graph::generators::{rmat, RmatParams};
    use updown_graph::preprocess::dedup_sort;

    fn graph() -> Csr {
        let mut g = Csr::from_edges(&dedup_sort(rmat(10, RmatParams::default(), 8).symmetrize()));
        g.sort_neighbors();
        g
    }

    #[test]
    fn parallel_pr_matches_sequential() {
        let g = graph();
        let a = algorithms::pagerank(&g, 3, 0.85);
        let b = pagerank_parallel(&g, 3, 0.85, 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_bfs_matches_sequential() {
        let g = graph();
        assert_eq!(bfs_parallel(&g, 0, 4), algorithms::bfs(&g, 0));
    }

    #[test]
    fn parallel_tc_matches_sequential() {
        let g = graph();
        assert_eq!(tc_parallel(&g, 4), algorithms::triangle_count(&g));
    }

    #[test]
    fn single_thread_degenerate_cases() {
        let g = graph();
        assert_eq!(tc_parallel(&g, 1), algorithms::triangle_count(&g));
        assert_eq!(bfs_parallel(&g, 3, 1), algorithms::bfs(&g, 3));
    }
}
