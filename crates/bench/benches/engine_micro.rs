//! Simulator micro-benchmarks: event throughput, fan-out delivery, DRAM
//! transaction pipeline, and swizzle translation speed.

use bench::timing::bench_host;
use std::hint::black_box;
use std::sync::Arc;
use updown_sim::{
    Engine, EventCtx, EventWord, MachineConfig, NetworkId, TranslationDescriptor, VAddr,
};

fn fanout_run(lanes: u32, msgs: u32) -> u64 {
    let mut eng = Engine::new(MachineConfig::small(1, 1, lanes));
    let sink = eng.register("sink", Arc::new(|ctx: &mut EventCtx| ctx.yield_terminate()));
    let fan = eng.register(
        "fan",
        Arc::new(move |ctx: &mut EventCtx| {
            for i in 0..msgs {
                ctx.send_event(
                    EventWord::new(NetworkId(i % lanes), sink),
                    [i as u64],
                    EventWord::IGNORE,
                );
            }
            ctx.yield_terminate();
        }),
    );
    eng.send(EventWord::new(NetworkId(0), fan), [], EventWord::IGNORE);
    eng.run().stats.events_executed
}

fn dram_pipeline_run(reads: u64) -> u64 {
    let mut eng = Engine::new(MachineConfig::small(2, 1, 8));
    let data = eng.mem_mut().alloc(reads * 8 + 64, 0, 2, 4096).unwrap();
    // All responses come back to the issuing thread: count them down.
    let ret = udweave::event::<u64>(&mut eng, "ret", move |ctx, got| {
        *got += 1;
        if *got == reads {
            ctx.yield_terminate();
        }
    });
    let go = eng.register(
        "go",
        Arc::new(move |ctx: &mut EventCtx| {
            for i in 0..reads {
                ctx.send_dram_read(VAddr(data.0).word(i), 1, ret);
            }
        }),
    );
    eng.send(EventWord::new(NetworkId(0), go), [], EventWord::IGNORE);
    eng.run().stats.dram_reads
}

fn main() {
    for lanes in [4u32, 16, 64] {
        bench_host(&format!("fanout_4096/{lanes}_lanes"), 15, || {
            fanout_run(lanes, 4096)
        });
    }
    bench_host("dram_pipeline_2048", 15, || dram_pipeline_run(2048));

    let d = TranslationDescriptor {
        base: VAddr(0x1000_0000),
        size: 1 << 30,
        first_node: 0,
        nr_nodes: 64,
        block_size: 32 * 1024,
    };
    let mut x = 0u64;
    bench_host("swizzle_translate_x1e6", 15, || {
        let mut acc = 0u32;
        for _ in 0..1_000_000 {
            x = x.wrapping_add(0x9E37_79B9);
            let va = VAddr(d.base.0 + (x % d.size));
            acc = acc.wrapping_add(black_box(d.pnn(va)));
        }
        acc
    });
}
