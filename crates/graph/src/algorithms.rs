//! Host-side reference algorithms: the correctness oracles for the UpDown
//! applications and the sequential CPU baselines.

use crate::csr::Csr;
use crate::preprocess::SplitGraph;

/// One push-style PageRank iteration: `next[d] += pr[s] / deg(s)` over all
/// edges, then `next = (1-damping)/n + damping * next`. Dangling mass is
/// dropped, matching the paper's simple push formulation.
pub fn pagerank_iteration(g: &Csr, pr: &[f64], damping: f64) -> Vec<f64> {
    let n = g.n() as usize;
    let mut next = vec![0.0f64; n];
    for v in 0..g.n() {
        let deg = g.degree(v);
        if deg == 0 {
            continue;
        }
        let contrib = pr[v as usize] / deg as f64;
        for &d in g.neigh(v) {
            next[d as usize] += contrib;
        }
    }
    let base = (1.0 - damping) / n as f64;
    for x in &mut next {
        *x = base + damping * *x;
    }
    next
}

/// `iters` PageRank iterations from the uniform vector.
pub fn pagerank(g: &Csr, iters: u32, damping: f64) -> Vec<f64> {
    let n = g.n() as usize;
    let mut pr = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        pr = pagerank_iteration(g, &pr, damping);
    }
    pr
}

/// One PageRank iteration over a vertex-split graph, producing values for
/// the *original* vertices — the oracle that vertex splitting preserves PR.
pub fn pagerank_iteration_split(sg: &SplitGraph, pr: &[f64], damping: f64) -> Vec<f64> {
    let n = sg.n_orig as usize;
    let mut next = vec![0.0f64; n];
    for s in 0..sg.n_sub() {
        let root = sg.sub_root[s as usize] as usize;
        let deg = sg.orig_deg[root];
        if deg == 0 {
            continue;
        }
        let contrib = pr[root] / deg as f64;
        for &d in sg.sub_neigh(s) {
            next[d as usize] += contrib;
        }
    }
    let base = (1.0 - damping) / n as f64;
    for x in &mut next {
        *x = base + damping * *x;
    }
    next
}

/// BFS distances from `root` (u64::MAX = unreachable).
pub fn bfs(g: &Csr, root: u32) -> Vec<u64> {
    let mut dist = vec![u64::MAX; g.n() as usize];
    let mut frontier = vec![root];
    dist[root as usize] = 0;
    let mut level = 0u64;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &d in g.neigh(v) {
                if dist[d as usize] == u64::MAX {
                    dist[d as usize] = level;
                    next.push(d);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Triangle count of an undirected graph (symmetric adjacency, sorted
/// neighbor lists, no self-loops/duplicates). Counts each triangle once.
pub fn triangle_count(g: &Csr) -> u64 {
    let mut count = 0u64;
    for v in 0..g.n() {
        for &u in g.neigh(v) {
            if u >= v {
                break; // sorted: only u < v pairs
            }
            count += intersect_count_less(g.neigh(v), g.neigh(u), u);
        }
    }
    count
}

/// |{z in a ∩ b : z < cap}| for sorted slices — the z < u < v ordering that
/// counts each triangle exactly once.
fn intersect_count_less(a: &[u32], b: &[u32], cap: u32) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut c = 0;
    while i < a.len() && j < b.len() && a[i] < cap && b[j] < cap {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Full sorted-merge intersection size (used by the device TC oracle,
/// which counts every common neighbor of an x>y pair and divides by 3).
pub fn intersect_count(a: &[u32], b: &[u32]) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut c = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::EdgeList;
    use crate::generators::{erdos_renyi, rmat, RmatParams};
    use crate::preprocess::{dedup_sort, split};

    fn triangle_graph() -> Csr {
        // K4 minus one edge: triangles {0,1,2} and {0,2,3}.
        let el = EdgeList::new(
            4,
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)],
        )
        .symmetrize();
        let mut g = Csr::from_edges(&dedup_sort(el));
        g.sort_neighbors();
        g
    }

    #[test]
    fn tc_counts_known_graph() {
        assert_eq!(triangle_count(&triangle_graph()), 2);
    }

    #[test]
    fn tc_by_pair_intersection_is_three_x() {
        // The device algorithm: for each x>y edge, count |N(x) ∩ N(y)|.
        let g = triangle_graph();
        let mut c = 0;
        for x in 0..g.n() {
            for &y in g.neigh(x) {
                if y < x {
                    c += intersect_count(g.neigh(x), g.neigh(y));
                }
            }
        }
        assert_eq!(c, 3 * 2);
    }

    #[test]
    fn pagerank_sums_near_one_without_dangling() {
        // ER symmetrized: no dangling vertices (almost surely all deg > 0).
        let el = dedup_sort(erdos_renyi(8, 8, 2).symmetrize());
        let g = Csr::from_edges(&el);
        let pr = pagerank(&g, 20, 0.85);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        assert!(pr.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pagerank_star_graph() {
        // Star: 1..4 each point to 0. pr(0) accumulates.
        let el = EdgeList::new(5, vec![(1, 0), (2, 0), (3, 0), (4, 0)]);
        let g = Csr::from_edges(&el);
        let pr = pagerank(&g, 1, 0.85);
        let base = 0.15 / 5.0;
        assert!((pr[0] - (base + 0.85 * 4.0 * 0.2)).abs() < 1e-12);
        assert!((pr[1] - base).abs() < 1e-12);
    }

    #[test]
    fn split_preserves_pagerank() {
        let el = dedup_sort(rmat(9, RmatParams::default(), 4));
        let g = Csr::from_edges(&el);
        let sg = split(&g, 8);
        let pr0 = vec![1.0 / g.n() as f64; g.n() as usize];
        let a = pagerank_iteration(&g, &pr0, 0.85);
        let b = pagerank_iteration_split(&sg, &pr0, 0.85);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn bfs_distances() {
        let el = EdgeList::new(6, vec![(0, 1), (1, 2), (2, 3), (0, 4)]);
        let g = Csr::from_edges(&el);
        let d = bfs(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 1, u64::MAX]);
    }

    #[test]
    fn bfs_on_random_graph_is_triangle_inequal() {
        let el = dedup_sort(rmat(8, RmatParams::default(), 5).symmetrize());
        let g = Csr::from_edges(&el);
        let d = bfs(&g, 0);
        for v in 0..g.n() {
            if d[v as usize] == u64::MAX {
                continue;
            }
            for &u in g.neigh(v) {
                assert!(d[u as usize] <= d[v as usize] + 1);
            }
        }
    }
}
