//! Aggregate simulation statistics: event counts, message traffic by tier,
//! memory traffic, and utilization summaries used by the experiment harness.

#[derive(Clone, Debug, Default)]
pub struct Stats {
    pub events_executed: u64,
    pub threads_created: u64,
    pub threads_terminated: u64,
    pub msgs_intra_accel: u64,
    pub msgs_intra_node: u64,
    pub msgs_inter_node: u64,
    pub dram_reads: u64,
    pub dram_writes: u64,
    pub dram_read_bytes: u64,
    pub dram_write_bytes: u64,
    pub dram_remote_accesses: u64,
    /// Messages parked because a lane's thread table was full.
    pub thread_table_stalls: u64,
    /// Peak size of the event calendar (simulator health metric).
    pub peak_calendar: usize,
}

impl Stats {
    pub fn total_msgs(&self) -> u64 {
        self.msgs_intra_accel + self.msgs_intra_node + self.msgs_inter_node
    }

    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Final report of a simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Tick at which the last event completed (or `stop()` was called).
    pub final_tick: u64,
    pub stats: Stats,
    /// Sum of busy cycles over all lanes.
    pub total_busy: u64,
    /// Number of lanes that executed at least one event.
    pub active_lanes: u64,
    pub total_lanes: u64,
}

impl RunReport {
    /// Mean utilization of active lanes over the run (0..1).
    pub fn utilization(&self) -> f64 {
        if self.final_tick == 0 || self.total_lanes == 0 {
            return 0.0;
        }
        self.total_busy as f64 / (self.final_tick as f64 * self.total_lanes as f64)
    }
}
