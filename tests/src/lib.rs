#![forbid(unsafe_code)]
//! Workspace integration tests live in `tests/tests/`.
