//! Host-side graph representations: edge lists and the vertex-array +
//! neighbor-list (CSR) format the UpDown applications consume (§4.1.1).

/// A plain edge list, the raw input format of the artifact's text files.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices (ids are `0..n`).
    pub n: u32,
    pub edges: Vec<(u32, u32)>,
}

impl EdgeList {
    pub fn new(n: u32, edges: Vec<(u32, u32)>) -> EdgeList {
        debug_assert!(edges.iter().all(|&(s, d)| s < n && d < n));
        EdgeList { n, edges }
    }

    pub fn m(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Add reverse edges (treat as undirected).
    pub fn symmetrize(mut self) -> EdgeList {
        let rev: Vec<(u32, u32)> = self
            .edges
            .iter()
            .filter(|&&(s, d)| s != d)
            .map(|&(s, d)| (d, s))
            .collect();
        self.edges.extend(rev);
        self
    }
}

/// Compressed sparse row: `offsets[v]..offsets[v+1]` indexes `neighbors`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Csr {
    pub offsets: Vec<u64>,
    pub neighbors: Vec<u32>,
}

impl Csr {
    /// Build from an edge list (out-edges; keeps duplicates and self-loops
    /// unless preprocessed away first — see [`crate::preprocess`]).
    pub fn from_edges(el: &EdgeList) -> Csr {
        let n = el.n as usize;
        let mut deg = vec![0u64; n];
        for &(s, _) in &el.edges {
            deg[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; el.edges.len()];
        for &(s, d) in &el.edges {
            let c = &mut cursor[s as usize];
            neighbors[*c as usize] = d;
            *c += 1;
        }
        Csr { offsets, neighbors }
    }

    #[inline]
    pub fn n(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    #[inline]
    pub fn m(&self) -> u64 {
        self.neighbors.len() as u64
    }

    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    #[inline]
    pub fn neigh(&self, v: u32) -> &[u32] {
        let a = self.offsets[v as usize] as usize;
        let b = self.offsets[v as usize + 1] as usize;
        &self.neighbors[a..b]
    }

    pub fn max_degree(&self) -> u32 {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Sort each neighbor list (required by intersection-based TC).
    pub fn sort_neighbors(&mut self) {
        for v in 0..self.n() {
            let a = self.offsets[v as usize] as usize;
            let b = self.offsets[v as usize + 1] as usize;
            self.neighbors[a..b].sort_unstable();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EdgeList {
        EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn csr_roundtrip() {
        let g = Csr::from_edges(&small());
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        assert_eq!(g.neigh(0), &[1, 2]);
        assert_eq!(g.neigh(1), &[2]);
        assert_eq!(g.neigh(2), &[3]);
        assert_eq!(g.neigh(3), &[0]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn symmetrize_doubles_non_loops() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 1)]).symmetrize();
        assert_eq!(el.m(), 3); // (0,1), (1,1), (1,0)
        let g = Csr::from_edges(&el);
        assert_eq!(g.neigh(1), &[1, 0]);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let g = Csr::from_edges(&EdgeList::new(5, vec![(0, 4)]));
        assert_eq!(g.degree(2), 0);
        assert!(g.neigh(2).is_empty());
    }

    #[test]
    fn sort_neighbors_sorts() {
        let mut g = Csr::from_edges(&EdgeList::new(3, vec![(0, 2), (0, 1)]));
        g.sort_neighbors();
        assert_eq!(g.neigh(0), &[1, 2]);
    }
}
