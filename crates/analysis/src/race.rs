//! # udrace static layer — conflict-pair analysis over the event-flow graph
//!
//! The dynamic race probe ([`RaceProbe`](updown_sim::RaceProbe)) reports
//! *observed* unordered conflicting accesses. This module adds the static
//! half of `udrace`:
//!
//! 1. **May-race pre-pass**: handler pairs whose footprints touch the same
//!    region (DRAM allocation or lane scratchpad) with at least one
//!    plain-write access, and which have *no directed path either way* in
//!    the udcheck event-flow graph. A send path is a happens-before proxy
//!    (messages order their endpoints), so pairs without one *may* race
//!    even when the instrumented run happened to order them.
//! 2. **Instrumentation pruning** ([`conflicted_regions`]): the same
//!    conflict test selects which regions are worth word-granular
//!    monitoring; `udrace --prune` runs a cheap footprint-only pass first
//!    and then monitors only conflicted regions.
//!
//! The flow-graph path test is a heuristic (it does not model barrier
//! counts or operand-dependent joins), so may-race findings are warnings
//! or infos, never errors; only dynamic sites are errors. Pruning inherits
//! the same caveat — CI runs udrace unpruned.

use std::collections::{BTreeMap, BTreeSet};

use updown_sim::json::JsonWriter;
use updown_sim::{RaceFilter, RaceKind, RaceProbe, RaceReport, Region};

use crate::{EventFlowGraph, Finding, Severity};

/// Human-readable name of a footprint region.
pub fn region_str(r: Region) -> String {
    match r {
        Region::Dram(base) => format!("dram alloc {base:#x}"),
        Region::Spm(lane) => format!("lane {lane} scratchpad"),
    }
}

fn region_json(w: &mut JsonWriter, r: Region) {
    w.begin_obj();
    match r {
        Region::Dram(base) => {
            w.key("space").string("dram");
            w.key("base").u64(base);
        }
        Region::Spm(lane) => {
            w.key("space").string("spm");
            w.key("lane").u64(lane as u64);
        }
    }
    w.end_obj();
}

/// Per-label transitive reachability over the event-flow graph's send
/// edges. Labels are few (tens), so dense BFS per node is fine.
fn closure(graph: &EventFlowGraph) -> BTreeMap<u16, BTreeSet<u16>> {
    let mut succ: BTreeMap<u16, BTreeSet<u16>> = BTreeMap::new();
    for e in &graph.edges {
        succ.entry(e.src).or_default().insert(e.dst);
    }
    let mut out = BTreeMap::new();
    for n in &graph.nodes {
        let mut seen = BTreeSet::new();
        let mut work = vec![n.label];
        while let Some(l) = work.pop() {
            if let Some(next) = succ.get(&l) {
                for &d in next {
                    if seen.insert(d) {
                        work.push(d);
                    }
                }
            }
        }
        out.insert(n.label, seen);
    }
    out
}

/// Classification of one footprint pair sharing a region. `None` means the
/// pair cannot race (reads only, or every write-class access on both sides
/// is atomic-class — lane-serialized commutative RMW, which orders).
fn pair_kind(
    a: &updown_sim::Footprint,
    b: &updown_sim::Footprint,
) -> Option<RaceKind> {
    let (aw, ar, aa) = (a.writes > 0, a.reads > 0, a.atomics > 0);
    let (bw, br, ba) = (b.writes > 0, b.reads > 0, b.atomics > 0);
    // Write-write: a plain write against any write-class access.
    if (aw && (bw || ba)) || (bw && aa) {
        return Some(RaceKind::WriteWrite);
    }
    // Read-write: a plain write (or atomic write, which still conflicts
    // with plain accesses) against a plain read.
    if (aw || aa) && br || (bw || ba) && ar {
        return Some(RaceKind::ReadWrite);
    }
    None
}

/// The may-race pre-pass: footprint pairs sharing a region with a
/// conflicting access mix and no directed flow-graph path either way.
///
/// Severity is drain-aware: an unordered write-write pair on a naturally
/// drained run is a [`Warning`](Severity::Warning) (the program finished,
/// but nothing orders those writes); read-write pairs and stopped runs
/// soften to [`Info`](Severity::Info). Dynamic sites are the errors — see
/// [`race_findings`].
pub fn may_race(graph: &EventFlowGraph, report: &RaceReport) -> Vec<Finding> {
    let reach = closure(graph);
    let ordered = |a: u16, b: u16| -> bool {
        reach.get(&a).is_some_and(|s| s.contains(&b))
            || reach.get(&b).is_some_and(|s| s.contains(&a))
    };
    let mut by_region: BTreeMap<Region, Vec<&updown_sim::Footprint>> = BTreeMap::new();
    for fp in &report.footprints {
        by_region.entry(fp.region).or_default().push(fp);
    }
    let mut out = Vec::new();
    for (&region, fps) in &by_region {
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                if a.handler == b.handler {
                    continue; // same-handler parallelism is judged dynamically
                }
                let Some(kind) = pair_kind(a, b) else { continue };
                if ordered(a.handler, b.handler) {
                    continue;
                }
                let severity = match kind {
                    RaceKind::WriteWrite if report.drained => Severity::Warning,
                    _ => Severity::Info,
                };
                out.push(Finding {
                    check: "may-race",
                    severity,
                    handler: report.handler_name(a.handler).to_string(),
                    message: format!(
                        "may {} race with '{}' on {}: both touch it ({} vs {} \
                         write(s)) with no event-flow path between the handlers",
                        kind.as_str(),
                        report.handler_name(b.handler),
                        region_str(region),
                        a.writes,
                        b.writes
                    ),
                });
            }
        }
    }
    out
}

/// Dynamic race sites as error findings (attributed to the later access).
pub fn race_findings(report: &RaceReport) -> Vec<Finding> {
    report
        .sites
        .iter()
        .map(|s| Finding {
            check: "race",
            severity: Severity::Error,
            handler: s.current.clone(),
            message: format!(
                "{} {} race with '{}' on {}: {} (x{}, first at tick {} lane {})",
                s.space.as_str(),
                s.kind.as_str(),
                s.prior,
                region_str(s.region),
                s.detail,
                s.count,
                s.first_tick,
                s.lane
            ),
        })
        .collect()
}

/// Regions worth word-granular monitoring: any region with a conflicting
/// cross-handler footprint pair, plus regions plain-written by a handler
/// that executed more than once (parallel instances of one handler are
/// invisible to the pair test). Regions whose only accesses are
/// atomic-class (fetch-and-add barriers, combining slots) are pruned:
/// atomics never race with each other, and the probe maintains their
/// release-acquire sync clocks even for filtered-out regions, so tracked
/// regions keep the ordering they derive from a pruned barrier. Used by
/// `udrace --prune` to filter the second, fully instrumented pass.
/// Heuristic — see the module docs.
pub fn conflicted_regions(graph: &EventFlowGraph, report: &RaceReport) -> RaceFilter {
    let reach = closure(graph);
    let ordered = |a: u16, b: u16| -> bool {
        reach.get(&a).is_some_and(|s| s.contains(&b))
            || reach.get(&b).is_some_and(|s| s.contains(&a))
    };
    let mut by_region: BTreeMap<Region, Vec<&updown_sim::Footprint>> = BTreeMap::new();
    for fp in &report.footprints {
        by_region.entry(fp.region).or_default().push(fp);
    }
    let mut filter = RaceFilter::default();
    for (&region, fps) in &by_region {
        let cross = fps.iter().enumerate().any(|(i, a)| {
            fps[i + 1..].iter().any(|b| {
                a.handler != b.handler
                    && pair_kind(a, b).is_some()
                    && !ordered(a.handler, b.handler)
            })
        });
        let self_par = fps.iter().any(|f| {
            f.writes > 0 && graph.node(f.handler).is_none_or(|n| n.executions > 1)
        });
        if cross || self_par {
            match region {
                Region::Dram(base) => {
                    filter.dram.insert(base);
                }
                Region::Spm(lane) => {
                    filter.spm.insert(lane);
                }
            }
        }
    }
    filter
}

/// One app's udrace result: dynamic report + static findings, bundled for
/// rendering (`udrace/v1`).
#[derive(Clone, Debug)]
pub struct RaceAnalysis {
    pub app: String,
    pub report: RaceReport,
    pub findings: Vec<Finding>,
}

impl RaceAnalysis {
    /// Bundle a finished run's race probe. When the run also carried a
    /// protocol probe, pass its flow graph to enable the may-race pre-pass.
    pub fn of(app: &str, probe: &RaceProbe, graph: Option<&EventFlowGraph>) -> RaceAnalysis {
        let report = probe.snapshot();
        let mut findings = race_findings(&report);
        if let Some(g) = graph {
            findings.extend(may_race(g, &report));
        }
        findings.sort_by(|a, b| {
            (a.severity, a.check, &a.handler, &a.message).cmp(&(
                b.severity,
                b.check,
                &b.handler,
                &b.message,
            ))
        });
        RaceAnalysis {
            app: app.to_string(),
            report,
            findings,
        }
    }

    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Clean = no dynamic race sites and no truncated sites. May-race
    /// warnings/infos do not make a run unclean.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }

    /// Append this run's `udrace/v1` object to a JSON writer (one element
    /// of the document's `runs` array).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.key("app").string(&self.app);
        w.key("drained").bool(self.report.drained);
        w.key("clean").bool(self.is_clean());
        w.key("accesses").u64(self.report.accesses);
        w.key("words_tracked").u64(self.report.words_tracked);
        w.key("sites").begin_arr();
        for s in &self.report.sites {
            w.begin_obj();
            w.key("space").string(s.space.as_str());
            w.key("kind").string(s.kind.as_str());
            w.key("prior").string(&s.prior);
            w.key("current").string(&s.current);
            w.key("region");
            region_json(w, s.region);
            w.key("detail").string(&s.detail);
            w.key("first_tick").u64(s.first_tick);
            w.key("lane").u64(s.lane as u64);
            w.key("count").u64(s.count);
            w.end_obj();
        }
        w.end_arr();
        w.key("sites_truncated").u64(self.report.sites_truncated);
        w.key("footprints").begin_arr();
        for f in &self.report.footprints {
            w.begin_obj();
            w.key("handler").string(self.report.handler_name(f.handler));
            w.key("region");
            region_json(w, f.region);
            w.key("reads").u64(f.reads);
            w.key("writes").u64(f.writes);
            w.key("atomics").u64(f.atomics);
            w.end_obj();
        }
        w.end_arr();
        w.key("findings").begin_arr();
        for f in &self.findings {
            w.begin_obj();
            w.key("check").string(f.check);
            w.key("severity").string(f.severity.as_str());
            w.key("handler").string(&f.handler);
            w.key("message").string(&f.message);
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
    }

    /// Human-readable rendering (the CLI's default output).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "udrace: {}  ({} access(es) over {} word(s), {})\n",
            self.app,
            self.report.accesses,
            self.report.words_tracked,
            if self.report.drained {
                "drained"
            } else {
                "stopped"
            }
        ));
        if self.findings.is_empty() {
            s.push_str("  races: none\n");
        } else {
            for f in &self.findings {
                s.push_str(&format!("  {f}\n"));
            }
        }
        if self.report.sites_truncated > 0 {
            s.push_str(&format!(
                "  warning: {} distinct race site(s) dropped past the site cap\n",
                self.report.sites_truncated
            ));
        }
        s
    }
}

/// Render a full `udrace/v1` document over a set of analyses.
pub fn render_race_document(analyses: &[RaceAnalysis]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("schema").string("udrace/v1");
    let races: u64 = analyses.iter().map(|a| a.report.sites.len() as u64).sum();
    w.key("races").u64(races);
    w.key("clean").bool(analyses.iter().all(|a| a.is_clean()));
    w.key("runs").begin_arr();
    for a in analyses {
        a.write_json(&mut w);
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowEdge, FlowNode};
    use updown_sim::{Footprint, RaceSite, RaceSpace};

    fn graph(nodes: &[(u16, &str, u64)], edges: &[(u16, u16)]) -> EventFlowGraph {
        EventFlowGraph {
            nodes: nodes
                .iter()
                .map(|&(label, name, executions)| FlowNode {
                    label,
                    name: name.to_string(),
                    executions,
                    terminates: executions,
                    spawns: 0,
                    spm_alloc_words: 0,
                })
                .collect(),
            edges: edges
                .iter()
                .map(|&(src, dst)| FlowEdge {
                    src,
                    dst,
                    count: 1,
                    argcs: vec![0],
                    with_cont: 0,
                    to_new: 0,
                })
                .collect(),
        }
    }

    fn fp(handler: u16, region: Region, reads: u64, writes: u64, atomics: u64) -> Footprint {
        Footprint {
            handler,
            region,
            reads,
            writes,
            atomics,
        }
    }

    fn report(names: &[&str], footprints: Vec<Footprint>, drained: bool) -> RaceReport {
        RaceReport {
            handler_names: names.iter().map(|s| s.to_string()).collect(),
            footprints,
            drained,
            ..RaceReport::default()
        }
    }

    #[test]
    fn unconnected_writers_may_race_path_orders() {
        let r = report(
            &["a", "b"],
            vec![
                fp(0, Region::Dram(0x100), 0, 5, 0),
                fp(1, Region::Dram(0x100), 0, 3, 0),
            ],
            true,
        );
        // No edges: write-write pair on a drained run is a warning.
        let f = may_race(&graph(&[(0, "a", 1), (1, "b", 1)], &[]), &r);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].check, "may-race");
        assert_eq!(f[0].severity, Severity::Warning);
        assert!(f[0].message.contains("write-write"));

        // A path in either direction orders the pair.
        let f = may_race(&graph(&[(0, "a", 1), (1, "b", 1)], &[(0, 1)]), &r);
        assert!(f.is_empty());
        let f = may_race(&graph(&[(0, "a", 1), (1, "b", 1)], &[(1, 0)]), &r);
        assert!(f.is_empty());
    }

    #[test]
    fn transitive_paths_count_and_severity_tracks_drain_and_kind() {
        let g = graph(&[(0, "a", 1), (1, "mid", 1), (2, "b", 1)], &[(0, 1), (1, 2)]);
        let wr = |drained| {
            report(
                &["a", "mid", "b"],
                vec![
                    fp(0, Region::Dram(0x100), 0, 5, 0),
                    fp(2, Region::Dram(0x100), 0, 3, 0),
                ],
                drained,
            )
        };
        assert!(may_race(&g, &wr(true)).is_empty(), "a→mid→b orders the pair");

        let disconnected = graph(&[(0, "a", 1), (2, "b", 1)], &[]);
        assert_eq!(may_race(&disconnected, &wr(true))[0].severity, Severity::Warning);
        assert_eq!(
            may_race(&disconnected, &wr(false))[0].severity,
            Severity::Info,
            "stopped runs soften write-write to info"
        );

        let rw = report(
            &["a", "mid", "b"],
            vec![
                fp(0, Region::Dram(0x100), 4, 0, 0),
                fp(2, Region::Dram(0x100), 0, 3, 0),
            ],
            true,
        );
        let f = may_race(&disconnected, &rw);
        assert_eq!(f[0].severity, Severity::Info, "read-write is info");
        assert!(f[0].message.contains("read-write"));
    }

    #[test]
    fn atomic_only_pairs_and_readers_do_not_conflict() {
        let g = graph(&[(0, "a", 1), (1, "b", 1)], &[]);
        // Both sides atomic-class: fetch-adds order, never race.
        let r = report(
            &["a", "b"],
            vec![
                fp(0, Region::Dram(0x100), 0, 0, 9),
                fp(1, Region::Dram(0x100), 0, 0, 4),
            ],
            true,
        );
        assert!(may_race(&g, &r).is_empty());
        // Read-only sharing is fine too.
        let r = report(
            &["a", "b"],
            vec![
                fp(0, Region::Dram(0x100), 9, 0, 0),
                fp(1, Region::Dram(0x100), 4, 0, 0),
            ],
            true,
        );
        assert!(may_race(&g, &r).is_empty());
        // But an atomic writer against a plain reader conflicts.
        let r = report(
            &["a", "b"],
            vec![
                fp(0, Region::Dram(0x100), 0, 0, 9),
                fp(1, Region::Dram(0x100), 4, 0, 0),
            ],
            true,
        );
        assert_eq!(may_race(&g, &r).len(), 1);
    }

    #[test]
    fn conflicted_regions_select_cross_pairs_and_parallel_writers() {
        let g = graph(&[(0, "a", 1), (1, "b", 1), (2, "par", 8)], &[(0, 1)]);
        let r = report(
            &["a", "b", "par"],
            vec![
                // a→b path: ordered, not conflicted.
                fp(0, Region::Dram(0x100), 0, 5, 0),
                fp(1, Region::Dram(0x100), 0, 3, 0),
                // Parallel handler writing alone: conflicted (self-parallel).
                fp(2, Region::Dram(0x200), 0, 9, 0),
                // Single-execution handler writing alone: not conflicted.
                fp(0, Region::Dram(0x300), 0, 2, 0),
                // Scratchpad region with an unordered cross pair.
                fp(1, Region::Spm(3), 0, 1, 0),
                fp(2, Region::Spm(3), 2, 0, 0),
            ],
            true,
        );
        let filter = conflicted_regions(&g, &r);
        assert!(!filter.dram.contains(&0x100));
        assert!(filter.dram.contains(&0x200));
        assert!(!filter.dram.contains(&0x300));
        assert!(filter.spm.contains(&3));
    }

    #[test]
    fn conflicted_regions_on_an_empty_graph_is_conservative() {
        // An empty report prunes everything; an unknown writer (no
        // flow-graph node, so no path and no execution count) is kept.
        let g = graph(&[], &[]);
        let f = conflicted_regions(&g, &report(&[], vec![], true));
        assert!(f.dram.is_empty() && f.spm.is_empty());
        let r = report(&["w"], vec![fp(0, Region::Dram(0x100), 0, 1, 0)], true);
        let f = conflicted_regions(&g, &r);
        assert!(f.dram.contains(&0x100), "unknown writer kept conservatively");
    }

    #[test]
    fn single_node_self_pairs_do_not_conflict() {
        // One handler executing once: its own footprints never form a
        // cross pair, and a single execution cannot self-race.
        let g = graph(&[(0, "solo", 1)], &[]);
        let r = report(
            &["solo"],
            vec![
                fp(0, Region::Dram(0x100), 4, 0, 0),
                fp(0, Region::Dram(0x100), 0, 2, 0),
                fp(0, Region::Spm(1), 3, 1, 0),
            ],
            true,
        );
        let f = conflicted_regions(&g, &r);
        assert!(f.dram.is_empty() && f.spm.is_empty(), "kept: {f:?}");
    }

    #[test]
    fn all_atomic_carriers_are_fully_pruned() {
        // Fetch-add barriers: atomic-vs-atomic never races, and the probe
        // maintains release-acquire clocks for filtered-out regions, so
        // atomic-only regions drop out of the monitored set entirely —
        // even when the handlers run many parallel instances.
        let g = graph(&[(0, "a", 9), (1, "b", 9)], &[]);
        let r = report(
            &["a", "b"],
            vec![
                fp(0, Region::Dram(0x100), 0, 0, 7),
                fp(1, Region::Dram(0x100), 0, 0, 5),
                fp(0, Region::Spm(2), 0, 0, 3),
            ],
            true,
        );
        let f = conflicted_regions(&g, &r);
        assert!(f.dram.is_empty() && f.spm.is_empty(), "kept: {f:?}");

        // But an atomic writer against an unordered plain reader is a
        // genuine conflict and stays monitored.
        let r = report(
            &["a", "b"],
            vec![
                fp(0, Region::Dram(0x100), 0, 0, 7),
                fp(1, Region::Dram(0x100), 4, 0, 0),
            ],
            true,
        );
        assert!(conflicted_regions(&g, &r).dram.contains(&0x100));
    }

    #[test]
    fn dynamic_sites_are_errors_and_unclean() {
        let mut r = report(&["w1", "w2"], vec![], true);
        r.sites.push(RaceSite {
            space: RaceSpace::Dram,
            kind: RaceKind::WriteWrite,
            prior: "w1".into(),
            current: "w2".into(),
            region: Region::Dram(0x100),
            detail: "dram word 0x100: write at tick 3 vs write at tick 7 (unordered)".into(),
            first_tick: 7,
            lane: 0,
            count: 2,
        });
        let probe = RaceProbe::new();
        let _ = probe; // findings built straight from the report here
        let findings = race_findings(&r);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].check, "race");
        assert_eq!(findings[0].severity, Severity::Error);
        assert!(findings[0].message.contains("'w1'"));
        assert!(!r.is_clean());
    }

    #[test]
    fn race_document_is_parseable_and_tagged() {
        let probe = RaceProbe::new();
        let a = RaceAnalysis::of("unit", &probe, None);
        let doc = render_race_document(&[a]);
        let v = updown_sim::json::JsonValue::parse(&doc).expect("valid JSON");
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some("udrace/v1"));
        assert_eq!(v.get("clean"), Some(&updown_sim::json::JsonValue::Bool(true)));
    }
}
